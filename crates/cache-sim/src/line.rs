//! Per-line cache state and metadata.

use crate::addr::LineAddr;

/// State of one cache line (one way of one set).
///
/// Besides the architectural state (`addr`, `valid`, `dirty`), a line
/// carries the metadata the paper's mechanisms need:
///
/// * `timestamp` — the 6-bit line timestamp TL used to measure reuse
///   distances (paper §4.1); 12 b of SLIP metadata per line in total,
///   together with `slip_codes`.
/// * `slip_codes` — the 3 b SLIP of this line for L2 (`[0]`) and L3
///   (`[1]`), copied alongside the line on insertion (paper Figure 7,
///   step Ð) so evictions don't need to probe the TLB.
/// * `sampling` — whether the line's page was in the sampling state when
///   the line was filled.
/// * `demoted` — LRU-PEA's demotion flag.
/// * `rrpv`, `signature` — DRRIP / SHiP replacement state.
/// * `hits_since_fill` — reuse counter feeding the Figure 1 histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineState {
    /// Full line address (we store the address instead of a tag; the
    /// simulator never aliases).
    pub addr: LineAddr,
    /// Whether the entry holds a line at all.
    pub valid: bool,
    /// Whether the line has been written since the last writeback.
    pub dirty: bool,
    /// Monotone sequence number of the last touch, for LRU.
    pub lru_seq: u64,
    /// 6-bit line timestamp TL (paper §4.1).
    pub timestamp: u8,
    /// 3 b SLIP codes for [L2, L3], carried with the line.
    pub slip_codes: [u8; 2],
    /// Whether the owning page was sampling at fill time.
    pub sampling: bool,
    /// LRU-PEA demotion flag.
    pub demoted: bool,
    /// DRRIP / SHiP re-reference prediction value (2 bits used).
    pub rrpv: u8,
    /// SHiP signature of the filling context.
    pub signature: u16,
    /// Hits received since this line was filled into the level.
    pub hits_since_fill: u32,
}

impl LineState {
    /// An invalid (empty) entry.
    pub const INVALID: LineState = LineState {
        addr: LineAddr(0),
        valid: false,
        dirty: false,
        lru_seq: 0,
        timestamp: 0,
        slip_codes: [0, 0],
        sampling: false,
        demoted: false,
        rrpv: 0,
        signature: 0,
        hits_since_fill: 0,
    };

    /// A fresh valid line for `addr`.
    pub fn new(addr: LineAddr) -> Self {
        LineState {
            addr,
            valid: true,
            ..LineState::INVALID
        }
    }
}

impl Default for LineState {
    fn default() -> Self {
        LineState::INVALID
    }
}

/// A line leaving a cache level, as reported by fill/eviction paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Address of the evicted line.
    pub addr: LineAddr,
    /// Whether it must be written back.
    pub dirty: bool,
    /// SLIP codes carried by the line.
    pub slip_codes: [u8; 2],
    /// Whether the line's page was sampling at fill time.
    pub sampling: bool,
    /// Hits the line received during its residency.
    pub hits_since_fill: u32,
}

impl EvictedLine {
    /// Captures the outbound view of a line state.
    pub fn from_state(s: &LineState) -> Self {
        EvictedLine {
            addr: s.addr,
            dirty: s.dirty,
            slip_codes: s.slip_codes,
            sampling: s.sampling,
            hits_since_fill: s.hits_since_fill,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_is_default() {
        let d = LineState::default();
        assert!(!d.valid);
        assert_eq!(d, LineState::INVALID);
    }

    #[test]
    fn new_line_is_clean_and_valid() {
        let l = LineState::new(LineAddr(42));
        assert!(l.valid);
        assert!(!l.dirty);
        assert_eq!(l.addr, LineAddr(42));
        assert_eq!(l.hits_since_fill, 0);
    }

    #[test]
    fn evicted_line_captures_state() {
        let mut l = LineState::new(LineAddr(7));
        l.dirty = true;
        l.slip_codes = [3, 5];
        l.hits_since_fill = 2;
        let e = EvictedLine::from_state(&l);
        assert_eq!(e.addr, LineAddr(7));
        assert!(e.dirty);
        assert_eq!(e.slip_codes, [3, 5]);
        assert_eq!(e.hits_since_fill, 2);
    }
}
