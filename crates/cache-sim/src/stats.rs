//! Per-level cache statistics.

use crate::policy::InsertionClass;

/// Counters for one cache level.
///
/// These feed the paper's evaluation figures directly:
///
/// * hit/miss and per-sublevel hit counters → Figures 12 and 15,
/// * insertion-class counters → Figure 14,
/// * the `nr_histogram` of reuses-before-eviction → Figure 1,
/// * movement/writeback/bypass counters → Figure 11's energy grouping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses that reached this level.
    pub demand_accesses: u64,
    /// Demand hits.
    pub demand_hits: u64,
    /// Demand misses.
    pub demand_misses: u64,
    /// Metadata accesses that reached this level.
    pub metadata_accesses: u64,
    /// Metadata hits.
    pub metadata_hits: u64,
    /// Metadata misses.
    pub metadata_misses: u64,
    /// Hits served by each sublevel (demand + metadata).
    pub hits_per_sublevel: Vec<u64>,
    /// Lines inserted into the level (excludes bypasses).
    pub insertions: u64,
    /// Fills classified by the SLIP class of the inserted line
    /// (indexed by [`InsertionClass::index`]); includes bypasses.
    pub insertion_class: [u64; 4],
    /// Fills that bypassed the level entirely.
    pub bypasses: u64,
    /// Inter-sublevel line movements (demotions and promotions).
    pub movements: u64,
    /// Promotion swaps performed on hits (NUCA policies).
    pub promotions: u64,
    /// Dirty lines written back out of the level.
    pub writebacks: u64,
    /// Lines that left the level (clean or dirty).
    pub evictions: u64,
    /// Lines by number of reuses before eviction: NR = 0, 1, 2, >2
    /// (paper Figure 1).
    pub nr_histogram: [u64; 4],
    /// Incoming writebacks from the level above that hit here.
    pub writeback_hits: u64,
    /// Incoming writebacks that missed and were forwarded down.
    pub writeback_misses: u64,
}

impl CacheStats {
    /// Creates zeroed stats for a level with `sublevels` sublevels.
    pub fn new(sublevels: usize) -> Self {
        CacheStats {
            hits_per_sublevel: vec![0; sublevels],
            ..CacheStats::default()
        }
    }

    /// All accesses (demand + metadata).
    pub fn total_accesses(&self) -> u64 {
        self.demand_accesses + self.metadata_accesses
    }

    /// All misses (demand + metadata), the level's outbound miss traffic
    /// (paper Figure 12).
    pub fn total_misses(&self) -> u64 {
        self.demand_misses + self.metadata_misses
    }

    /// Demand hit rate in [0, 1]; 0 if there were no demand accesses.
    pub fn demand_hit_rate(&self) -> f64 {
        if self.demand_accesses == 0 {
            0.0
        } else {
            self.demand_hits as f64 / self.demand_accesses as f64
        }
    }

    /// Fraction of hits served by each sublevel (paper Figure 15).
    /// Returns zeros if there were no hits.
    pub fn sublevel_hit_fractions(&self) -> Vec<f64> {
        let total: u64 = self.hits_per_sublevel.iter().sum();
        if total == 0 {
            return vec![0.0; self.hits_per_sublevel.len()];
        }
        self.hits_per_sublevel
            .iter()
            .map(|&h| h as f64 / total as f64)
            .collect()
    }

    /// Fraction of fills per insertion class (paper Figure 14).
    /// Returns zeros if there were no fills.
    pub fn insertion_class_fractions(&self) -> [f64; 4] {
        let total: u64 = self.insertion_class.iter().sum();
        let mut out = [0.0; 4];
        if total > 0 {
            for (o, &c) in out.iter_mut().zip(&self.insertion_class) {
                *o = c as f64 / total as f64;
            }
        }
        out
    }

    /// Fraction of lines per reuse count (paper Figure 1).
    /// Returns zeros if no lines have been evicted or finalized.
    pub fn nr_fractions(&self) -> [f64; 4] {
        let total: u64 = self.nr_histogram.iter().sum();
        let mut out = [0.0; 4];
        if total > 0 {
            for (o, &c) in out.iter_mut().zip(&self.nr_histogram) {
                *o = c as f64 / total as f64;
            }
        }
        out
    }

    /// Records that a line left the level (or was still resident at the
    /// end of simulation) after `hits` reuses.
    pub fn record_line_reuses(&mut self, hits: u32) {
        let bin = (hits as usize).min(3);
        self.nr_histogram[bin] += 1;
    }

    /// Records a fill classified as `class`.
    pub fn record_insertion_class(&mut self, class: InsertionClass) {
        self.insertion_class[class.index()] += 1;
    }

    /// Adds another level's counters into this one (field-wise integer
    /// addition). Used by the set-sharded runner's reduction; because
    /// every field is a count, merge order cannot change the result.
    pub fn merge(&mut self, other: &CacheStats) {
        assert_eq!(
            self.hits_per_sublevel.len(),
            other.hits_per_sublevel.len(),
            "sublevel count mismatch"
        );
        self.demand_accesses += other.demand_accesses;
        self.demand_hits += other.demand_hits;
        self.demand_misses += other.demand_misses;
        self.metadata_accesses += other.metadata_accesses;
        self.metadata_hits += other.metadata_hits;
        self.metadata_misses += other.metadata_misses;
        for (dst, src) in self
            .hits_per_sublevel
            .iter_mut()
            .zip(&other.hits_per_sublevel)
        {
            *dst += *src;
        }
        self.insertions += other.insertions;
        for (dst, src) in self.insertion_class.iter_mut().zip(&other.insertion_class) {
            *dst += *src;
        }
        self.bypasses += other.bypasses;
        self.movements += other.movements;
        self.promotions += other.promotions;
        self.writebacks += other.writebacks;
        self.evictions += other.evictions;
        for (dst, src) in self.nr_histogram.iter_mut().zip(&other.nr_histogram) {
            *dst += *src;
        }
        self.writeback_hits += other.writeback_hits;
        self.writeback_misses += other.writeback_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_fractions() {
        let mut s = CacheStats::new(3);
        s.demand_accesses = 10;
        s.demand_hits = 4;
        s.demand_misses = 6;
        s.hits_per_sublevel = vec![2, 1, 1];
        assert_eq!(s.demand_hit_rate(), 0.4);
        assert_eq!(s.sublevel_hit_fractions(), vec![0.5, 0.25, 0.25]);
        assert_eq!(s.total_accesses(), 10);
        assert_eq!(s.total_misses(), 6);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = CacheStats::new(3);
        assert_eq!(s.demand_hit_rate(), 0.0);
        assert_eq!(s.sublevel_hit_fractions(), vec![0.0; 3]);
        assert_eq!(s.nr_fractions(), [0.0; 4]);
        assert_eq!(s.insertion_class_fractions(), [0.0; 4]);
    }

    #[test]
    fn nr_histogram_saturates_at_bin_3() {
        let mut s = CacheStats::new(1);
        s.record_line_reuses(0);
        s.record_line_reuses(1);
        s.record_line_reuses(2);
        s.record_line_reuses(3);
        s.record_line_reuses(100);
        assert_eq!(s.nr_histogram, [1, 1, 1, 2]);
        let f = s.nr_fractions();
        assert!((f[3] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn insertion_classes_counted() {
        let mut s = CacheStats::new(1);
        s.record_insertion_class(InsertionClass::AllBypass);
        s.record_insertion_class(InsertionClass::Default);
        s.record_insertion_class(InsertionClass::Default);
        assert_eq!(s.insertion_class[InsertionClass::AllBypass.index()], 1);
        assert_eq!(s.insertion_class[InsertionClass::Default.index()], 2);
    }
}
