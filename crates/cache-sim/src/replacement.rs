//! Replacement policies: choosing a victim among candidate ways.
//!
//! SLIP is orthogonal to replacement (paper Section 3): a placement
//! policy narrows the candidate ways to a chunk, then the replacement
//! policy picks the victim within it. Besides the paper's evaluation
//! default (LRU) this module provides Random, DRRIP, and SHiP; the two
//! RRIP policies implement the Section 7 adaptation (per-way RRPV state
//! works unchanged when victimization is restricted to a chunk).

use crate::geometry::WayMask;
use crate::line::LineState;
use crate::rng::SplitMix64;

/// Chooses victims among candidate ways of a set.
///
/// `set` is the full slice of ways of one set; `candidates` is never
/// empty and contains only valid lines (the controller fills invalid ways
/// first without consulting the policy).
pub trait ReplacementPolicy {
    /// Human-readable policy name.
    fn name(&self) -> &'static str;

    /// Picks the victim way among `candidates`.
    fn choose_victim(
        &mut self,
        set_index: usize,
        set: &mut [LineState],
        candidates: WayMask,
    ) -> usize;

    /// Called on every hit.
    fn on_hit(&mut self, _set_index: usize, _set: &mut [LineState], _way: usize) {}

    /// Called after a line is filled into `way` (insertion or movement).
    fn on_fill(&mut self, _set_index: usize, _set: &mut [LineState], _way: usize) {}

    /// Called on every miss at this level.
    fn on_miss(&mut self, _set_index: usize) {}

    /// Called when a line leaves the level entirely.
    fn on_evict(&mut self, _line: &LineState) {}
}

/// Least-recently-used replacement, the paper's evaluation default.
///
/// Recency is tracked with the monotone `lru_seq` stamps the cache
/// controller writes on every touch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lru;

impl Lru {
    /// Creates an LRU policy.
    pub fn new() -> Self {
        Lru
    }
}

impl ReplacementPolicy for Lru {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn choose_victim(
        &mut self,
        _set_index: usize,
        set: &mut [LineState],
        candidates: WayMask,
    ) -> usize {
        candidates
            .iter()
            .min_by_key(|&w| set[w].lru_seq)
            .expect("candidate mask must not be empty")
    }
}

/// Uniform-random replacement (a sanity baseline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomReplacement {
    rng: SplitMix64,
}

impl RandomReplacement {
    /// Creates a random replacement policy with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomReplacement {
            rng: SplitMix64::new(seed),
        }
    }
}

impl ReplacementPolicy for RandomReplacement {
    fn name(&self) -> &'static str {
        "random"
    }

    fn choose_victim(
        &mut self,
        _set_index: usize,
        _set: &mut [LineState],
        candidates: WayMask,
    ) -> usize {
        let n = candidates.count() as u64;
        let k = self.rng.next_below(n) as usize;
        candidates.iter().nth(k).expect("index within mask")
    }
}

/// Maximum RRPV for 2-bit RRIP (“distant re-reference”).
const RRPV_MAX: u8 = 3;
/// RRPV given to hits (“near-immediate re-reference”).
const RRPV_HIT: u8 = 0;
/// RRPV for “long re-reference interval” insertion.
const RRPV_LONG: u8 = 2;

/// DRRIP (Dynamic Re-Reference Interval Prediction), Jaleel et al.,
/// ISCA 2010, with 2-bit RRPVs and set dueling between SRRIP and BRRIP.
///
/// Section 7 of the SLIP paper argues DRRIP composes with SLIP because
/// victimization within a chunk preserves scan and thrash resistance;
/// the `sec7_replacement_ablation` bench exercises exactly that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Drrip {
    rng: SplitMix64,
    /// Policy-selection counter: high means BRRIP is winning.
    psel: i32,
    psel_max: i32,
    /// Every `dueling_modulus`-th set leads for SRRIP; the next one for
    /// BRRIP.
    dueling_modulus: usize,
}

impl Drrip {
    /// Creates a DRRIP policy with the given seed.
    pub fn new(seed: u64) -> Self {
        Drrip {
            rng: SplitMix64::new(seed),
            psel: 0,
            psel_max: 512,
            dueling_modulus: 32,
        }
    }

    fn set_role(&self, set_index: usize) -> SetRole {
        match set_index % self.dueling_modulus {
            0 => SetRole::SrripLeader,
            1 => SetRole::BrripLeader,
            _ => SetRole::Follower,
        }
    }

    fn brrip_active(&self, set_index: usize) -> bool {
        match self.set_role(set_index) {
            SetRole::SrripLeader => false,
            SetRole::BrripLeader => true,
            SetRole::Follower => self.psel < 0,
        }
    }

    fn rrip_victim(set: &mut [LineState], candidates: WayMask) -> usize {
        loop {
            if let Some(w) = candidates.iter().find(|&w| set[w].rrpv >= RRPV_MAX) {
                return w;
            }
            for w in candidates.iter() {
                set[w].rrpv += 1;
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetRole {
    SrripLeader,
    BrripLeader,
    Follower,
}

impl ReplacementPolicy for Drrip {
    fn name(&self) -> &'static str {
        "DRRIP"
    }

    fn choose_victim(
        &mut self,
        _set_index: usize,
        set: &mut [LineState],
        candidates: WayMask,
    ) -> usize {
        Self::rrip_victim(set, candidates)
    }

    fn on_hit(&mut self, _set_index: usize, set: &mut [LineState], way: usize) {
        set[way].rrpv = RRPV_HIT;
    }

    fn on_fill(&mut self, set_index: usize, set: &mut [LineState], way: usize) {
        let brrip = self.brrip_active(set_index);
        set[way].rrpv = if brrip {
            // BRRIP: distant except for a 1/32 trickle of long insertions.
            if self.rng.one_in(32) {
                RRPV_LONG
            } else {
                RRPV_MAX
            }
        } else {
            RRPV_LONG
        };
    }

    fn on_miss(&mut self, set_index: usize) {
        // A miss in a leader set is a vote against that leader's policy.
        match self.set_role(set_index) {
            SetRole::SrripLeader => self.psel = (self.psel - 1).max(-self.psel_max),
            SetRole::BrripLeader => self.psel = (self.psel + 1).min(self.psel_max),
            SetRole::Follower => {}
        }
    }
}

/// SHiP (Signature-based Hit Predictor), Wu et al., MICRO 2011, with a
/// memory-region (page) signature and a 3-bit saturating SHCT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ship {
    shct: Vec<u8>,
}

/// Number of SHCT entries (indexed by the low bits of the signature).
const SHCT_ENTRIES: usize = 16 * 1024;
/// SHCT saturation maximum (3-bit counters).
const SHCT_MAX: u8 = 7;

impl Ship {
    /// Creates a SHiP policy with a weakly-reusing prior.
    pub fn new() -> Self {
        Ship {
            shct: vec![1; SHCT_ENTRIES],
        }
    }

    fn slot(&mut self, signature: u16) -> &mut u8 {
        &mut self.shct[signature as usize % SHCT_ENTRIES]
    }
}

impl Default for Ship {
    fn default() -> Self {
        Ship::new()
    }
}

impl ReplacementPolicy for Ship {
    fn name(&self) -> &'static str {
        "SHiP"
    }

    fn choose_victim(
        &mut self,
        _set_index: usize,
        set: &mut [LineState],
        candidates: WayMask,
    ) -> usize {
        Drrip::rrip_victim(set, candidates)
    }

    fn on_hit(&mut self, _set_index: usize, set: &mut [LineState], way: usize) {
        set[way].rrpv = RRPV_HIT;
        let sig = set[way].signature;
        let slot = self.slot(sig);
        *slot = (*slot + 1).min(SHCT_MAX);
    }

    fn on_fill(&mut self, _set_index: usize, set: &mut [LineState], way: usize) {
        let sig = set[way].signature;
        let predicted_dead = *self.slot(sig) == 0;
        set[way].rrpv = if predicted_dead { RRPV_MAX } else { RRPV_LONG };
    }

    fn on_evict(&mut self, line: &LineState) {
        if line.hits_since_fill == 0 {
            let slot = self.slot(line.signature);
            *slot = slot.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::LineAddr;

    fn set_of(n: usize) -> Vec<LineState> {
        (0..n)
            .map(|i| {
                let mut l = LineState::new(LineAddr(i as u64));
                l.lru_seq = i as u64;
                l
            })
            .collect()
    }

    #[test]
    fn lru_picks_oldest_candidate() {
        let mut set = set_of(8);
        set[3].lru_seq = 100;
        set[5].lru_seq = 1;
        let mut lru = Lru::new();
        // Among ways 3..8, way 5 is oldest.
        let v = lru.choose_victim(0, &mut set, WayMask::from_range(3..8));
        assert_eq!(v, 5);
        // Restricted to ways 3..5, way 4 (seq 4) is oldest.
        let v = lru.choose_victim(0, &mut set, WayMask::from_range(3..5));
        assert_eq!(v, 4);
    }

    #[test]
    fn random_stays_within_candidates() {
        let mut set = set_of(8);
        let mut r = RandomReplacement::new(9);
        let mask = WayMask::from_range(2..6);
        for _ in 0..1000 {
            let v = r.choose_victim(0, &mut set, mask);
            assert!(mask.contains(v));
        }
    }

    #[test]
    fn drrip_victim_prefers_distant_rrpv() {
        let mut set = set_of(4);
        set[2].rrpv = RRPV_MAX;
        let mut d = Drrip::new(1);
        assert_eq!(d.choose_victim(5, &mut set, WayMask::full(4)), 2);
    }

    #[test]
    fn drrip_ages_when_no_distant_line() {
        let mut set = set_of(4);
        for l in set.iter_mut() {
            l.rrpv = 1;
        }
        let mut d = Drrip::new(1);
        let v = d.choose_victim(5, &mut set, WayMask::full(4));
        // Aging increments everyone to RRPV_MAX eventually; the lowest
        // way index wins the scan.
        assert_eq!(v, 0);
        assert!(set.iter().all(|l| l.rrpv == RRPV_MAX));
    }

    #[test]
    fn drrip_hit_resets_rrpv() {
        let mut set = set_of(4);
        set[1].rrpv = 3;
        let mut d = Drrip::new(1);
        d.on_hit(0, &mut set, 1);
        assert_eq!(set[1].rrpv, RRPV_HIT);
    }

    #[test]
    fn drrip_set_dueling_flips_insertion() {
        let mut d = Drrip::new(1);
        // Misses in the BRRIP leader push psel up => SRRIP for followers.
        for _ in 0..100 {
            d.on_miss(1);
        }
        assert!(!d.brrip_active(2));
        // Misses in the SRRIP leader push psel down => BRRIP for followers.
        for _ in 0..300 {
            d.on_miss(0);
        }
        assert!(d.brrip_active(2));
        // Leaders always use their own policy.
        assert!(!d.brrip_active(0));
        assert!(d.brrip_active(1));
    }

    #[test]
    fn ship_learns_dead_signatures() {
        let mut s = Ship::new();
        let mut set = set_of(4);
        set[0].signature = 77;
        // A line with signature 77 dies without reuse => SHCT decremented
        // to zero => next fill with that signature predicted dead.
        s.on_evict(&set[0]);
        set[1].signature = 77;
        s.on_fill(0, &mut set, 1);
        assert_eq!(set[1].rrpv, RRPV_MAX);
        // A hit trains the signature back up.
        s.on_hit(0, &mut set, 1);
        set[2].signature = 77;
        s.on_fill(0, &mut set, 2);
        assert_eq!(set[2].rrpv, RRPV_LONG);
    }

    #[test]
    fn ship_ignores_reused_evictions() {
        let mut s = Ship::new();
        let mut line = LineState::new(LineAddr(1));
        line.signature = 5;
        line.hits_since_fill = 3;
        s.on_evict(&line);
        // Counter untouched (still the prior of 1): next fill is LONG.
        let mut set = set_of(2);
        set[0].signature = 5;
        s.on_fill(0, &mut set, 0);
        assert_eq!(set[0].rrpv, RRPV_LONG);
    }
}
