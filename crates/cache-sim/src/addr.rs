//! Address types and memory accesses.
//!
//! The whole workspace works at 64 B cache-line granularity and 4 KB page
//! granularity. Newtypes keep byte addresses, line addresses, and page
//! numbers from being mixed up.

use core::fmt;

/// log2 of the cache line size (64 B).
pub const LINE_SHIFT: u32 = 6;

/// Cache line size in bytes.
pub const LINE_BYTES: u64 = 1 << LINE_SHIFT;

/// log2 of the page size (4 KB).
pub const PAGE_SHIFT: u32 = 12;

/// Page size in bytes.
pub const PAGE_BYTES: u64 = 1 << PAGE_SHIFT;

/// Cache lines per 4 KB page.
pub const LINES_PER_PAGE: u64 = PAGE_BYTES / LINE_BYTES;

/// The address of a 64 B cache line (a byte address shifted right by 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The line containing byte address `byte`.
    #[inline]
    pub fn from_byte_addr(byte: u64) -> Self {
        LineAddr(byte >> LINE_SHIFT)
    }

    /// First byte address of this line.
    #[inline]
    pub fn byte_addr(self) -> u64 {
        self.0 << LINE_SHIFT
    }

    /// The page this line belongs to.
    #[inline]
    pub fn page(self) -> PageId {
        PageId(self.0 >> (PAGE_SHIFT - LINE_SHIFT))
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

/// A virtual page number (byte address shifted right by 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PageId(pub u64);

impl PageId {
    /// The page containing byte address `byte`.
    #[inline]
    pub fn from_byte_addr(byte: u64) -> Self {
        PageId(byte >> PAGE_SHIFT)
    }

    /// First byte address of this page.
    #[inline]
    pub fn byte_addr(self) -> u64 {
        self.0 << PAGE_SHIFT
    }

    /// First line of this page.
    #[inline]
    pub fn first_line(self) -> LineAddr {
        LineAddr(self.0 << (PAGE_SHIFT - LINE_SHIFT))
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page:{:#x}", self.0)
    }
}

/// Whether an access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// `true` for [`AccessKind::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// Why an access is traversing the hierarchy.
///
/// Paper Figure 12 separates *demand* misses from *metadata overhead*
/// misses (reuse-distance distribution fetches); stats are kept per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// A regular program load/store.
    Demand,
    /// SLIP distribution-metadata traffic.
    Metadata,
}

/// One memory reference in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// Byte address referenced.
    pub addr: u64,
    /// Load or store.
    pub kind: AccessKind,
}

impl Access {
    /// A read of byte address `addr`.
    #[inline]
    pub fn read(addr: u64) -> Self {
        Access {
            addr,
            kind: AccessKind::Read,
        }
    }

    /// A write of byte address `addr`.
    #[inline]
    pub fn write(addr: u64) -> Self {
        Access {
            addr,
            kind: AccessKind::Write,
        }
    }

    /// The cache line this access touches.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr::from_byte_addr(self.addr)
    }

    /// The page this access touches.
    #[inline]
    pub fn page(self) -> PageId {
        PageId::from_byte_addr(self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_addr_round_trip() {
        let a = LineAddr::from_byte_addr(0x12345);
        assert_eq!(a, LineAddr(0x12345 >> 6));
        assert_eq!(a.byte_addr(), 0x12345 & !0x3f);
    }

    #[test]
    fn page_of_line() {
        let a = LineAddr::from_byte_addr(0x5_4321);
        assert_eq!(a.page(), PageId(0x5_4321 >> 12));
        // 64 lines per page.
        assert_eq!(LINES_PER_PAGE, 64);
        let p = PageId(7);
        assert_eq!(p.first_line(), LineAddr(7 * 64));
        assert_eq!(p.first_line().page(), p);
    }

    #[test]
    fn access_helpers() {
        let r = Access::read(0x1000);
        let w = Access::write(0x1000);
        assert!(!r.kind.is_write());
        assert!(w.kind.is_write());
        assert_eq!(r.line(), LineAddr(0x40));
        assert_eq!(r.page(), PageId(1));
    }

    #[test]
    fn display_impls() {
        assert_eq!(LineAddr(0x10).to_string(), "line:0x10");
        assert_eq!(PageId(0x10).to_string(), "page:0x10");
    }
}
