//! Placement policies: where lines are inserted, demoted, and promoted.
//!
//! A [`PlacementPolicy`] decides *which ways* of a set may receive a line
//! at three points of its life: initial insertion (fill), demotion (after
//! being displaced), and promotion (on a hit). The cache controller
//! ([`crate::CacheLevel`]) turns those way masks into actual victim
//! selection, data movement, and energy charges. This split mirrors the
//! paper: SLIP, NuRAPID, LRU-PEA, and the regular baseline are all
//! placement policies over the same physical cache, differing only in the
//! masks they return and the hooks they use.

use crate::addr::LineAddr;
use crate::geometry::{CacheGeometry, WayMask};
use crate::line::LineState;

/// SLIP class of a fill, for paper Figure 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsertionClass {
    /// The All-Bypass Policy: the line skips the level entirely.
    AllBypass,
    /// A policy that bypasses one or more sublevels but not all.
    PartialBypass,
    /// The Default SLIP: one chunk of all sublevels (a regular cache).
    Default,
    /// Any other policy (uses all sublevels, split into several chunks).
    Other,
}

impl InsertionClass {
    /// Dense index for histogramming (order: ABP, partial, default, other).
    pub fn index(self) -> usize {
        match self {
            InsertionClass::AllBypass => 0,
            InsertionClass::PartialBypass => 1,
            InsertionClass::Default => 2,
            InsertionClass::Other => 3,
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            InsertionClass::AllBypass => "ABP",
            InsertionClass::PartialBypass => "partial-bypass",
            InsertionClass::Default => "default",
            InsertionClass::Other => "others",
        }
    }
}

/// A line arriving at a level from below (DRAM) or above (writeback
/// allocate), about to be placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillRequest {
    /// Line being filled.
    pub addr: LineAddr,
    /// Whether the incoming copy is already dirty.
    pub dirty: bool,
    /// 3 b SLIP codes for [L2, L3], from the TLB/PTE.
    pub slip_codes: [u8; 2],
    /// Whether the line's page is in the sampling state.
    pub sampling: bool,
    /// SHiP signature of the requesting context.
    pub signature: u16,
}

impl FillRequest {
    /// A plain fill request with no SLIP metadata attached.
    pub fn new(addr: LineAddr) -> Self {
        FillRequest {
            addr,
            dirty: false,
            slip_codes: [0, 0],
            sampling: false,
            signature: 0,
        }
    }
}

/// Decides placement of lines within one cache level.
///
/// All mask-returning methods may assume the mask is interpreted within
/// the set of the line in question. Returning `None` from
/// [`insertion_mask`](Self::insertion_mask) bypasses the level;
/// returning `None` from [`demotion_mask`](Self::demotion_mask) evicts
/// the line from the level; returning `None` from
/// [`promotion_mask`](Self::promotion_mask) leaves the line where it is.
pub trait PlacementPolicy {
    /// Human-readable policy name (for reports).
    fn name(&self) -> &'static str;

    /// Ways eligible for the initial insertion of `req`, or `None` to
    /// bypass the level.
    fn insertion_mask(&mut self, geom: &CacheGeometry, req: &FillRequest) -> Option<WayMask>;

    /// Ways an evicted `line` (displaced from `from_way`) may move into,
    /// or `None` to evict it from the level.
    fn demotion_mask(
        &mut self,
        geom: &CacheGeometry,
        line: &LineState,
        from_way: usize,
    ) -> Option<WayMask>;

    /// Ways the line at `hit_way` should be promoted into on a hit, or
    /// `None` to leave it in place. Promotion is performed as a swap with
    /// a victim selected in the returned mask.
    fn promotion_mask(
        &mut self,
        _geom: &CacheGeometry,
        _line: &LineState,
        _hit_way: usize,
    ) -> Option<WayMask> {
        None
    }

    /// Classifies a fill for the Figure 14 histogram.
    fn classify_insertion(&self, _geom: &CacheGeometry, _req: &FillRequest) -> InsertionClass {
        InsertionClass::Default
    }

    /// Hook called when a promotion swaps two valid lines, letting the
    /// policy mark state on them (LRU-PEA marks the displaced line
    /// demoted).
    fn on_promotion_swap(&mut self, _promoted: &mut LineState, _demoted: &mut LineState) {}

    /// Whether this policy moves lines and therefore needs the movement
    /// queue probed on every lookup (0.3 pJ per lookup, paper Section 5).
    fn uses_movement_queue(&self) -> bool {
        false
    }

    /// Whether this policy reads/writes the 12 b per-line SLIP metadata
    /// (two 3 b SLIPs + 6 b timestamp) on accesses and fills, paying the
    /// Table 2 metadata access energy each time.
    fn uses_line_metadata(&self) -> bool {
        false
    }
}

/// The regular cache hierarchy of the paper's comparisons: insert
/// anywhere (victim chosen by the replacement policy over all ways),
/// never move lines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BaselinePolicy;

impl BaselinePolicy {
    /// Creates the baseline policy.
    pub fn new() -> Self {
        BaselinePolicy
    }
}

impl PlacementPolicy for BaselinePolicy {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn insertion_mask(&mut self, geom: &CacheGeometry, _req: &FillRequest) -> Option<WayMask> {
        Some(WayMask::full(geom.ways))
    }

    fn demotion_mask(
        &mut self,
        _geom: &CacheGeometry,
        _line: &LineState,
        _from_way: usize,
    ) -> Option<WayMask> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use energy_model::Energy;

    fn geom() -> CacheGeometry {
        CacheGeometry::uniform(16, 8, Energy::from_pj(1.0), 1)
    }

    #[test]
    fn baseline_inserts_anywhere_and_never_moves() {
        let g = geom();
        let mut p = BaselinePolicy::new();
        let req = FillRequest::new(LineAddr(3));
        assert_eq!(p.insertion_mask(&g, &req), Some(WayMask::full(8)));
        let line = LineState::new(LineAddr(3));
        assert_eq!(p.demotion_mask(&g, &line, 0), None);
        assert_eq!(p.promotion_mask(&g, &line, 0), None);
        assert!(!p.uses_movement_queue());
        assert_eq!(p.classify_insertion(&g, &req), InsertionClass::Default);
    }

    #[test]
    fn insertion_class_indices_are_dense() {
        let classes = [
            InsertionClass::AllBypass,
            InsertionClass::PartialBypass,
            InsertionClass::Default,
            InsertionClass::Other,
        ];
        for (i, c) in classes.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(!c.label().is_empty());
        }
    }
}
