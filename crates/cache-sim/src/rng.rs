//! A tiny deterministic RNG (SplitMix64).
//!
//! The simulator needs cheap, seedable, dependency-free randomness for
//! replacement tie-breaking, LRU-PEA's random-sublevel insertion, DRRIP's
//! bimodal insertion, and SLIP's time-based sampling transitions.
//! SplitMix64 passes BigCrush for these purposes and makes every
//! simulation reproducible from its seed.

/// SplitMix64 pseudo-random number generator.
///
/// # Example
///
/// ```
/// use cache_sim::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping; bias is < 2^-32 for the
        // small bounds used here.
        ((self.next_u64() >> 32).wrapping_mul(bound)) >> 32
    }

    /// `true` with probability `1/denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero.
    #[inline]
    pub fn one_in(&mut self, denominator: u64) -> bool {
        self.next_below(denominator) == 0
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Picks an index in `0..weights.len()` with probability proportional
    /// to the weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn pick_weighted(&mut self, weights: &[u64]) -> usize {
        let total: u64 = weights.iter().sum();
        assert!(total > 0, "weights must not sum to zero");
        let mut x = self.next_below(total);
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_is_in_range() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    fn one_in_probability_roughly_matches() {
        let mut r = SplitMix64::new(4);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.one_in(16)).count();
        let expect = n as f64 / 16.0;
        assert!(
            (hits as f64 - expect).abs() < expect * 0.15,
            "hits {hits} vs expect {expect}"
        );
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(5);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn pick_weighted_follows_weights() {
        let mut r = SplitMix64::new(6);
        let mut counts = [0u64; 3];
        for _ in 0..60_000 {
            counts[r.pick_weighted(&[1, 1, 2])] += 1;
        }
        // Expect roughly 15k/15k/30k.
        assert!((counts[0] as f64 - 15_000.0).abs() < 1500.0);
        assert!((counts[2] as f64 - 30_000.0).abs() < 2000.0);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_rejects_zero() {
        SplitMix64::new(0).next_below(0);
    }
}
