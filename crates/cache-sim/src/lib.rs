//! Trace-driven set-associative cache simulator with sublevel-aware
//! energy accounting.
//!
//! This crate is the cache substrate of the SLIP reproduction: a
//! policy-free cache level ([`CacheLevel`]) whose behavior is injected
//! through two traits:
//!
//! * [`PlacementPolicy`] — which ways a line may be inserted into,
//!   demoted into on displacement, or promoted into on a hit. The SLIP
//!   policy, the NuRAPID and LRU-PEA baselines, and the regular cache
//!   ([`BaselinePolicy`]) are all placement policies.
//! * [`ReplacementPolicy`] — which victim to pick within the candidate
//!   ways ([`Lru`], [`RandomReplacement`], [`Drrip`], [`Ship`]).
//!
//! Every operation charges the energies of paper Table 2 into an
//! [`energy_model::EnergyAccount`], split by the categories of paper
//! Figure 11, and maintains the statistics behind Figures 1, 12, 14, and
//! 15.
//!
//! # Example: a 2-sublevel cache with LRU
//!
//! ```
//! use cache_sim::{AccessClass, AccessKind, BaselinePolicy, CacheGeometry,
//!                 CacheLevel, FillRequest, LineAddr, Lru};
//! use energy_model::Energy;
//!
//! let geom = CacheGeometry::from_sublevels(
//!     256,
//!     &[(4, Energy::from_pj(21.0), 4), (12, Energy::from_pj(45.0), 8)],
//! );
//! let mut cache = CacheLevel::new("L2", geom);
//! let mut policy = BaselinePolicy::new();
//! let mut repl = Lru::new();
//!
//! let line = LineAddr(0x40);
//! cache.fill(FillRequest::new(line), 0, &mut policy, &mut repl);
//! let res = cache.access(line, AccessKind::Read, AccessClass::Demand, 0,
//!                        &mut policy, &mut repl);
//! assert!(res.is_hit());
//! assert!(cache.energy().total() > Energy::ZERO);
//! ```

pub mod addr;
pub mod cache;
pub mod geometry;
pub mod hash;
pub mod line;
pub mod movement;
pub mod policy;
pub mod replacement;
pub mod rng;
pub mod soa;
pub mod stats;

pub use addr::{Access, AccessClass, AccessKind, LineAddr, PageId};
pub use cache::{AccessResult, CacheLevel, EvictionBuf, FillOutcome, HitInfo};
pub use geometry::{CacheGeometry, SublevelEnergies, WayMask};
pub use line::{EvictedLine, LineState};
pub use movement::MovementQueue;
pub use policy::{BaselinePolicy, FillRequest, InsertionClass, PlacementPolicy};
pub use replacement::{Drrip, Lru, RandomReplacement, ReplacementPolicy, Ship};
pub use soa::PackedLruStack;
pub use stats::CacheStats;
