//! Randomized property tests of the cache substrate: replacement-policy
//! contracts, demotion-cascade termination, and LRU semantics under
//! arbitrary access patterns.
//!
//! Cases are drawn from seeded [`SplitMix64`] streams so every run is
//! deterministic without an external property-testing framework.

use cache_sim::policy::{FillRequest, InsertionClass, PlacementPolicy};
use cache_sim::rng::SplitMix64;
use cache_sim::{
    AccessClass, AccessKind, BaselinePolicy, CacheGeometry, CacheLevel, Drrip, LineAddr, LineState,
    Lru, PackedLruStack, ReplacementPolicy, Ship, WayMask,
};
use energy_model::Energy;

const CASES: u64 = 128;

fn geom_2level() -> CacheGeometry {
    CacheGeometry::from_sublevels(
        16,
        &[
            (4, Energy::from_pj(10.0), 2),
            (12, Energy::from_pj(40.0), 6),
        ],
    )
}

fn random_addrs(rng: &mut SplitMix64, space: u64, min: u64, max: u64) -> Vec<LineAddr> {
    let n = min + rng.next_below(max - min);
    (0..n).map(|_| LineAddr(rng.next_below(space))).collect()
}

/// A placement policy that always demotes one sublevel further,
/// exercising the cascade machinery.
#[derive(Debug)]
struct CascadePolicy;

impl PlacementPolicy for CascadePolicy {
    fn name(&self) -> &'static str {
        "cascade"
    }

    fn insertion_mask(&mut self, geom: &CacheGeometry, _req: &FillRequest) -> Option<WayMask> {
        Some(geom.sublevel_ways(0))
    }

    fn demotion_mask(
        &mut self,
        geom: &CacheGeometry,
        _line: &LineState,
        from_way: usize,
    ) -> Option<WayMask> {
        let s = geom.sublevel(from_way);
        if s + 1 < geom.sublevels() {
            Some(geom.sublevel_ways(s + 1))
        } else {
            None
        }
    }

    fn classify_insertion(&self, _geom: &CacheGeometry, _req: &FillRequest) -> InsertionClass {
        InsertionClass::Other
    }
}

/// LRU always evicts the least-recently-touched candidate.
#[test]
fn lru_contract() {
    let mut rng = SplitMix64::new(0x114);
    for _ in 0..CASES {
        let n = 4 + rng.next_below(12) as usize;
        let mut set: Vec<LineState> = (0..n)
            .map(|i| {
                let mut l = LineState::new(LineAddr(i as u64));
                l.lru_seq = rng.next_below(1_000_000);
                l
            })
            .collect();
        let mut lru = Lru::new();
        let victim = lru.choose_victim(0, &mut set, WayMask::full(n));
        let min = set.iter().map(|l| l.lru_seq).min().unwrap();
        assert_eq!(set[victim].lru_seq, min);
    }
}

/// DRRIP and SHiP victims always come from the candidate mask.
#[test]
fn rrip_victims_stay_in_mask() {
    let mut rng = SplitMix64::new(0x221);
    for _ in 0..CASES {
        let mut set: Vec<LineState> = (0..8)
            .map(|i| {
                let mut l = LineState::new(LineAddr(i as u64));
                l.rrpv = rng.next_below(4) as u8;
                l
            })
            .collect();
        let mask = WayMask::from_bits(1 + rng.next_below(254) as u32);
        assert!(!mask.is_empty());
        let mut drrip = Drrip::new(7);
        let v = drrip.choose_victim(0, &mut set, mask);
        assert!(mask.contains(v));
        let mut set2 = set.clone();
        let mut ship = Ship::new();
        let v = ship.choose_victim(0, &mut set2, mask);
        assert!(mask.contains(v));
    }
}

/// Demotion cascades always terminate and conserve lines: the number
/// of resident lines only grows by successful insertions.
#[test]
fn cascades_terminate_and_conserve_lines() {
    let mut rng = SplitMix64::new(0x332);
    for _ in 0..32 {
        let addrs = random_addrs(&mut rng, 4096, 1, 400);
        let mut cache = CacheLevel::new("c", geom_2level());
        let mut policy = CascadePolicy;
        let mut repl = Lru::new();
        let mut inserted = 0u64;
        let mut departed = 0u64;
        for (i, &line) in addrs.iter().enumerate() {
            let hit = cache
                .access(
                    line,
                    AccessKind::Read,
                    AccessClass::Demand,
                    i as u64,
                    &mut policy,
                    &mut repl,
                )
                .is_hit();
            if !hit {
                let out = cache.fill(FillRequest::new(line), i as u64, &mut policy, &mut repl);
                assert!(!out.bypassed);
                inserted += 1;
                departed += out.evicted().count() as u64;
            }
        }
        assert_eq!(cache.resident_lines() as u64, inserted - departed);
        // Demotions were exercised whenever lines left the level.
        if departed > 0 {
            assert!(cache.stats.movements > 0);
        }
    }
}

/// A line is always findable right after its fill, and the way it
/// occupies is within the policy's insertion mask.
#[test]
fn fills_land_in_the_insertion_mask() {
    let mut rng = SplitMix64::new(0x443);
    for _ in 0..32 {
        let addrs = random_addrs(&mut rng, 512, 1, 200);
        let mut cache = CacheLevel::new("c", geom_2level());
        let mut policy = CascadePolicy;
        let mut repl = Lru::new();
        for (i, &line) in addrs.iter().enumerate() {
            if cache.probe_way(line).is_none() {
                cache.fill(FillRequest::new(line), i as u64, &mut policy, &mut repl);
                let way = cache.probe_way(line).expect("just filled");
                // CascadePolicy inserts into sublevel 0 only.
                assert_eq!(cache.geometry().sublevel(way), 0);
            }
        }
    }
}

/// The packed SoA LRU stack picks the same victim as the reference
/// `Lru` (min `lru_seq`) for every way count 1–16, over random
/// touch/evict/refill sequences with random candidate masks.
#[test]
fn packed_stack_matches_reference_lru_for_every_way_count() {
    let mut rng = SplitMix64::new(0x665);
    for ways in 1..=16usize {
        for _ in 0..CASES / 4 {
            let mut stack = PackedLruStack::new();
            let mut set: Vec<LineState> = (0..ways)
                .map(|i| LineState::new(LineAddr(i as u64)))
                .collect();
            let mut lru = Lru::new();
            let mut seq = 0u64;
            // Every way starts touched (a fill is a touch), mirroring
            // the cache invariant that victim candidates are valid.
            for (w, line) in set.iter_mut().enumerate() {
                seq += 1;
                line.lru_seq = seq;
                stack.touch(w);
            }
            for _ in 0..200 {
                if rng.next_below(4) == 0 {
                    // Evict within a random non-empty candidate mask,
                    // then refill the slot (a fresh touch).
                    let mask_bits = 1 + rng.next_below((1u64 << ways) - 1) as u32;
                    let mask = WayMask::from_bits(mask_bits);
                    let want = lru.choose_victim(0, &mut set, mask);
                    let got = stack.victim_among(mask_bits, ways);
                    assert_eq!(got, want, "ways {ways}, mask {mask_bits:#b}");
                    seq += 1;
                    set[got].lru_seq = seq;
                    stack.touch(got);
                } else {
                    let w = rng.next_below(ways as u64) as usize;
                    seq += 1;
                    set[w].lru_seq = seq;
                    stack.touch(w);
                }
            }
        }
    }
}

/// The SoA fast-hit path (`try_demand_hit` + full-access fallback) is
/// a drop-in replacement for the reference access path on a
/// baseline-LRU level: same verdicts, same latencies, same victims,
/// same statistics, over random read/write streams.
#[test]
fn packed_cache_matches_reference_access_path() {
    let mut rng = SplitMix64::new(0x776);
    let geom = || CacheGeometry::from_sublevels(8, &[(8, Energy::from_pj(5.0), 4)]);
    for _ in 0..32 {
        let mut fast = CacheLevel::new("f", geom())
            .with_tag_filter(true)
            .with_packed_lru(true);
        let mut reference = CacheLevel::new("r", geom());
        let mut fast_pol = BaselinePolicy::new();
        let mut fast_repl = Lru::new();
        let mut ref_pol = BaselinePolicy::new();
        let mut ref_repl = Lru::new();
        let addrs = random_addrs(&mut rng, 192, 100, 600);
        for (i, &line) in addrs.iter().enumerate() {
            let is_write = rng.next_below(4) == 0;
            let kind = if is_write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let r = reference.access(
                line,
                kind,
                AccessClass::Demand,
                i as u64,
                &mut ref_pol,
                &mut ref_repl,
            );
            match fast.try_demand_hit(line, is_write) {
                Some(latency) => {
                    assert!(r.is_hit(), "fast hit where reference missed: {line:?}");
                    if let cache_sim::AccessResult::Hit(h) = r {
                        assert_eq!(latency, h.latency, "hit latency diverged: {line:?}");
                    }
                }
                None => {
                    let f = fast.access(
                        line,
                        kind,
                        AccessClass::Demand,
                        i as u64,
                        &mut fast_pol,
                        &mut fast_repl,
                    );
                    assert!(!f.is_hit(), "try_demand_hit refused a resident line");
                    assert!(
                        !r.is_hit(),
                        "reference hit where fast path missed: {line:?}"
                    );
                    assert_eq!(f.latency(), r.latency());
                    let fo = fast.fill(
                        FillRequest::new(line),
                        i as u64,
                        &mut fast_pol,
                        &mut fast_repl,
                    );
                    let ro = reference.fill(
                        FillRequest::new(line),
                        i as u64,
                        &mut ref_pol,
                        &mut ref_repl,
                    );
                    let fe: Vec<_> = fo.evicted().map(|e| (e.addr, e.dirty)).collect();
                    let re: Vec<_> = ro.evicted().map(|e| (e.addr, e.dirty)).collect();
                    assert_eq!(fe, re, "divergent victims at access {i}");
                }
            }
            assert_eq!(fast.probe_way(line), reference.probe_way(line));
        }
        assert_eq!(fast.stats.demand_accesses, reference.stats.demand_accesses);
        assert_eq!(fast.stats.demand_hits, reference.stats.demand_hits);
        assert_eq!(fast.stats.demand_misses, reference.stats.demand_misses);
        assert_eq!(fast.stats.evictions, reference.stats.evictions);
        assert_eq!(fast.stats.writebacks, reference.stats.writebacks);
        assert_eq!(
            fast.stats.hits_per_sublevel,
            reference.stats.hits_per_sublevel
        );
        assert_eq!(fast.energy().total(), reference.energy().total());
    }
}

/// Evicting or invalidating the memoized line retires the way memo:
/// the stale memo must never satisfy a fast hit for the departed
/// address, and the slot's new occupant must still fast-hit.
#[test]
fn way_memo_is_invalidated_on_eviction() {
    // One set, two ways: evictions are easy to aim.
    let geom = CacheGeometry::from_sublevels(1, &[(2, Energy::from_pj(5.0), 4)]);
    let mut cache = CacheLevel::new("c", geom)
        .with_tag_filter(true)
        .with_packed_lru(true);
    let mut policy = BaselinePolicy::new();
    let mut repl = Lru::new();
    let (a, b, c) = (LineAddr(1), LineAddr(2), LineAddr(3));
    cache.fill(FillRequest::new(a), 0, &mut policy, &mut repl);
    cache.fill(FillRequest::new(b), 0, &mut policy, &mut repl);
    // Hit `a`: the memo now points at a's way, and `a` is MRU.
    assert!(cache.try_demand_hit(a, false).is_some());
    let memo_way = cache.memoized_way(0).expect("memo set by the hit");
    assert_eq!(cache.probe_way(a), Some(memo_way));
    // Hit `a` again so LRU would evict `b`, then aim at `a` anyway:
    // an explicit invalidate of the memoized line.
    assert!(cache.try_demand_hit(a, false).is_some());
    cache.invalidate(a);
    assert_eq!(
        cache.memoized_way(0),
        None,
        "invalidate must clear the memo"
    );
    assert!(cache.try_demand_hit(a, false).is_none());
    // Fill `c`; it lands in a's old slot (the only invalid way). The
    // departed address must not fast-hit; the new occupant must.
    cache.fill(FillRequest::new(c), 0, &mut policy, &mut repl);
    assert!(cache.try_demand_hit(a, false).is_none());
    assert!(cache.try_demand_hit(c, false).is_some());
    // Eviction through a fill cascade also retires the memo: hit `b`
    // (memo = b's way), then fill a new line evicting LRU... `c` was
    // just touched, so evict order is b-then-c only if b is LRU; touch
    // c to make b the victim and memoize b first.
    assert!(cache.try_demand_hit(b, false).is_some());
    assert!(cache.try_demand_hit(c, false).is_some());
    assert!(cache.try_demand_hit(b, false).is_some());
    let b_way = cache.memoized_way(0).expect("memo points at b");
    assert_eq!(cache.probe_way(b), Some(b_way));
    // Evict `c` (LRU) with a new fill: memo (at b) survives and b
    // still fast-hits, while c no longer does.
    let d = LineAddr(4);
    cache.fill(FillRequest::new(d), 0, &mut policy, &mut repl);
    assert!(cache.probe_way(c).is_none(), "c was the LRU victim");
    assert!(cache.try_demand_hit(c, false).is_none());
    assert!(cache.try_demand_hit(b, false).is_some());
    // Now make b the victim of a fill: the memo pointing at b's way
    // must be retired when d's fill displaces it.
    assert!(cache.try_demand_hit(d, false).is_some());
    assert!(cache.try_demand_hit(b, false).is_some());
    assert!(cache.try_demand_hit(d, false).is_some());
    let e = LineAddr(5);
    cache.fill(FillRequest::new(e), 0, &mut policy, &mut repl);
    assert!(cache.probe_way(b).is_none(), "b was the LRU victim");
    assert!(cache.try_demand_hit(b, false).is_none());
    assert!(cache.try_demand_hit(e, false).is_some());
}

/// Energy accounting is monotone: more accesses never reduce any
/// category.
#[test]
fn energy_is_monotone() {
    let mut rng = SplitMix64::new(0x554);
    for _ in 0..32 {
        let addrs = random_addrs(&mut rng, 2048, 2, 100);
        let mut cache = CacheLevel::new("c", geom_2level());
        let mut policy = CascadePolicy;
        let mut repl = Lru::new();
        let mut prev = Energy::ZERO;
        for (i, &line) in addrs.iter().enumerate() {
            let hit = cache
                .access(
                    line,
                    AccessKind::Read,
                    AccessClass::Demand,
                    i as u64,
                    &mut policy,
                    &mut repl,
                )
                .is_hit();
            if !hit {
                cache.fill(FillRequest::new(line), i as u64, &mut policy, &mut repl);
            }
            let total = cache.energy().total();
            assert!(total >= prev);
            prev = total;
        }
    }
}
