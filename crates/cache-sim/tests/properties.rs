//! Randomized property tests of the cache substrate: replacement-policy
//! contracts, demotion-cascade termination, and LRU semantics under
//! arbitrary access patterns.
//!
//! Cases are drawn from seeded [`SplitMix64`] streams so every run is
//! deterministic without an external property-testing framework.

use cache_sim::policy::{FillRequest, InsertionClass, PlacementPolicy};
use cache_sim::rng::SplitMix64;
use cache_sim::{
    AccessClass, AccessKind, CacheGeometry, CacheLevel, Drrip, LineAddr, LineState, Lru,
    ReplacementPolicy, Ship, WayMask,
};
use energy_model::Energy;

const CASES: u64 = 128;

fn geom_2level() -> CacheGeometry {
    CacheGeometry::from_sublevels(
        16,
        &[
            (4, Energy::from_pj(10.0), 2),
            (12, Energy::from_pj(40.0), 6),
        ],
    )
}

fn random_addrs(rng: &mut SplitMix64, space: u64, min: u64, max: u64) -> Vec<LineAddr> {
    let n = min + rng.next_below(max - min);
    (0..n).map(|_| LineAddr(rng.next_below(space))).collect()
}

/// A placement policy that always demotes one sublevel further,
/// exercising the cascade machinery.
#[derive(Debug)]
struct CascadePolicy;

impl PlacementPolicy for CascadePolicy {
    fn name(&self) -> &'static str {
        "cascade"
    }

    fn insertion_mask(&mut self, geom: &CacheGeometry, _req: &FillRequest) -> Option<WayMask> {
        Some(geom.sublevel_ways(0))
    }

    fn demotion_mask(
        &mut self,
        geom: &CacheGeometry,
        _line: &LineState,
        from_way: usize,
    ) -> Option<WayMask> {
        let s = geom.sublevel(from_way);
        if s + 1 < geom.sublevels() {
            Some(geom.sublevel_ways(s + 1))
        } else {
            None
        }
    }

    fn classify_insertion(&self, _geom: &CacheGeometry, _req: &FillRequest) -> InsertionClass {
        InsertionClass::Other
    }
}

/// LRU always evicts the least-recently-touched candidate.
#[test]
fn lru_contract() {
    let mut rng = SplitMix64::new(0x114);
    for _ in 0..CASES {
        let n = 4 + rng.next_below(12) as usize;
        let mut set: Vec<LineState> = (0..n)
            .map(|i| {
                let mut l = LineState::new(LineAddr(i as u64));
                l.lru_seq = rng.next_below(1_000_000);
                l
            })
            .collect();
        let mut lru = Lru::new();
        let victim = lru.choose_victim(0, &mut set, WayMask::full(n));
        let min = set.iter().map(|l| l.lru_seq).min().unwrap();
        assert_eq!(set[victim].lru_seq, min);
    }
}

/// DRRIP and SHiP victims always come from the candidate mask.
#[test]
fn rrip_victims_stay_in_mask() {
    let mut rng = SplitMix64::new(0x221);
    for _ in 0..CASES {
        let mut set: Vec<LineState> = (0..8)
            .map(|i| {
                let mut l = LineState::new(LineAddr(i as u64));
                l.rrpv = rng.next_below(4) as u8;
                l
            })
            .collect();
        let mask = WayMask::from_bits(1 + rng.next_below(254) as u32);
        assert!(!mask.is_empty());
        let mut drrip = Drrip::new(7);
        let v = drrip.choose_victim(0, &mut set, mask);
        assert!(mask.contains(v));
        let mut set2 = set.clone();
        let mut ship = Ship::new();
        let v = ship.choose_victim(0, &mut set2, mask);
        assert!(mask.contains(v));
    }
}

/// Demotion cascades always terminate and conserve lines: the number
/// of resident lines only grows by successful insertions.
#[test]
fn cascades_terminate_and_conserve_lines() {
    let mut rng = SplitMix64::new(0x332);
    for _ in 0..32 {
        let addrs = random_addrs(&mut rng, 4096, 1, 400);
        let mut cache = CacheLevel::new("c", geom_2level());
        let mut policy = CascadePolicy;
        let mut repl = Lru::new();
        let mut inserted = 0u64;
        let mut departed = 0u64;
        for (i, &line) in addrs.iter().enumerate() {
            let hit = cache
                .access(
                    line,
                    AccessKind::Read,
                    AccessClass::Demand,
                    i as u64,
                    &mut policy,
                    &mut repl,
                )
                .is_hit();
            if !hit {
                let out = cache.fill(FillRequest::new(line), i as u64, &mut policy, &mut repl);
                assert!(!out.bypassed);
                inserted += 1;
                departed += out.evicted().count() as u64;
            }
        }
        assert_eq!(cache.resident_lines() as u64, inserted - departed);
        // Demotions were exercised whenever lines left the level.
        if departed > 0 {
            assert!(cache.stats.movements > 0);
        }
    }
}

/// A line is always findable right after its fill, and the way it
/// occupies is within the policy's insertion mask.
#[test]
fn fills_land_in_the_insertion_mask() {
    let mut rng = SplitMix64::new(0x443);
    for _ in 0..32 {
        let addrs = random_addrs(&mut rng, 512, 1, 200);
        let mut cache = CacheLevel::new("c", geom_2level());
        let mut policy = CascadePolicy;
        let mut repl = Lru::new();
        for (i, &line) in addrs.iter().enumerate() {
            if cache.probe_way(line).is_none() {
                cache.fill(FillRequest::new(line), i as u64, &mut policy, &mut repl);
                let way = cache.probe_way(line).expect("just filled");
                // CascadePolicy inserts into sublevel 0 only.
                assert_eq!(cache.geometry().sublevel(way), 0);
            }
        }
    }
}

/// Energy accounting is monotone: more accesses never reduce any
/// category.
#[test]
fn energy_is_monotone() {
    let mut rng = SplitMix64::new(0x554);
    for _ in 0..32 {
        let addrs = random_addrs(&mut rng, 2048, 2, 100);
        let mut cache = CacheLevel::new("c", geom_2level());
        let mut policy = CascadePolicy;
        let mut repl = Lru::new();
        let mut prev = Energy::ZERO;
        for (i, &line) in addrs.iter().enumerate() {
            let hit = cache
                .access(
                    line,
                    AccessKind::Read,
                    AccessClass::Demand,
                    i as u64,
                    &mut policy,
                    &mut repl,
                )
                .is_hit();
            if !hit {
                cache.fill(FillRequest::new(line), i as u64, &mut policy, &mut repl);
            }
            let total = cache.energy().total();
            assert!(total >= prev);
            prev = total;
        }
    }
}
