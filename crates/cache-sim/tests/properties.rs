//! Property-based tests of the cache substrate: replacement-policy
//! contracts, demotion-cascade termination, and LRU semantics under
//! arbitrary access patterns.

use cache_sim::policy::{FillRequest, InsertionClass, PlacementPolicy};
use cache_sim::{
    AccessClass, AccessKind, CacheGeometry, CacheLevel, Drrip, LineAddr, LineState, Lru,
    ReplacementPolicy, Ship, WayMask,
};
use energy_model::Energy;
use proptest::prelude::*;

fn geom_2level() -> CacheGeometry {
    CacheGeometry::from_sublevels(
        16,
        &[(4, Energy::from_pj(10.0), 2), (12, Energy::from_pj(40.0), 6)],
    )
}

/// A placement policy that always demotes one sublevel further,
/// exercising the cascade machinery.
#[derive(Debug)]
struct CascadePolicy;

impl PlacementPolicy for CascadePolicy {
    fn name(&self) -> &'static str {
        "cascade"
    }

    fn insertion_mask(&mut self, geom: &CacheGeometry, _req: &FillRequest) -> Option<WayMask> {
        Some(geom.sublevel_ways(0))
    }

    fn demotion_mask(
        &mut self,
        geom: &CacheGeometry,
        _line: &LineState,
        from_way: usize,
    ) -> Option<WayMask> {
        let s = geom.sublevel(from_way);
        if s + 1 < geom.sublevels() {
            Some(geom.sublevel_ways(s + 1))
        } else {
            None
        }
    }

    fn classify_insertion(&self, _geom: &CacheGeometry, _req: &FillRequest) -> InsertionClass {
        InsertionClass::Other
    }
}

proptest! {
    /// LRU always evicts the least-recently-touched candidate.
    #[test]
    fn lru_contract(seqs in prop::collection::vec(0u64..1_000_000, 4..16)) {
        let mut set: Vec<LineState> = seqs
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let mut l = LineState::new(LineAddr(i as u64));
                l.lru_seq = s;
                l
            })
            .collect();
        let n = set.len();
        let mut lru = Lru::new();
        let victim = lru.choose_victim(0, &mut set, WayMask::full(n));
        let min = set.iter().map(|l| l.lru_seq).min().unwrap();
        prop_assert_eq!(set[victim].lru_seq, min);
    }

    /// DRRIP and SHiP victims always come from the candidate mask.
    #[test]
    fn rrip_victims_stay_in_mask(
        rrpvs in prop::collection::vec(0u8..4, 8),
        mask_bits in 1u32..255,
    ) {
        let mut set: Vec<LineState> = rrpvs
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let mut l = LineState::new(LineAddr(i as u64));
                l.rrpv = r;
                l
            })
            .collect();
        let mask = WayMask::from_bits(mask_bits & 0xFF);
        prop_assume!(!mask.is_empty());
        let mut drrip = Drrip::new(7);
        let v = drrip.choose_victim(0, &mut set, mask);
        prop_assert!(mask.contains(v));
        let mut set2 = set.clone();
        let mut ship = Ship::new();
        let v = ship.choose_victim(0, &mut set2, mask);
        prop_assert!(mask.contains(v));
    }

    /// Demotion cascades always terminate and conserve lines: the
    /// number of resident lines only grows by successful insertions.
    #[test]
    fn cascades_terminate_and_conserve_lines(
        addrs in prop::collection::vec(0u64..4096, 1..400),
    ) {
        let mut cache = CacheLevel::new("c", geom_2level());
        let mut policy = CascadePolicy;
        let mut repl = Lru::new();
        let mut inserted = 0u64;
        let mut departed = 0u64;
        for (i, &a) in addrs.iter().enumerate() {
            let line = LineAddr(a);
            let hit = cache
                .access(line, AccessKind::Read, AccessClass::Demand, i as u64, &mut policy, &mut repl)
                .is_hit();
            if !hit {
                let out = cache.fill(FillRequest::new(line), i as u64, &mut policy, &mut repl);
                prop_assert!(!out.bypassed);
                inserted += 1;
                departed += out.evicted().count() as u64;
            }
        }
        prop_assert_eq!(cache.resident_lines() as u64, inserted - departed);
        // Demotions were exercised whenever lines left the level.
        if departed > 0 {
            prop_assert!(cache.stats.movements > 0);
        }
    }

    /// A line is always findable right after its fill, and the way it
    /// occupies is within the policy's insertion mask.
    #[test]
    fn fills_land_in_the_insertion_mask(addrs in prop::collection::vec(0u64..512, 1..200)) {
        let mut cache = CacheLevel::new("c", geom_2level());
        let mut policy = CascadePolicy;
        let mut repl = Lru::new();
        for (i, &a) in addrs.iter().enumerate() {
            let line = LineAddr(a);
            if cache.probe_way(line).is_none() {
                cache.fill(FillRequest::new(line), i as u64, &mut policy, &mut repl);
                let way = cache.probe_way(line).expect("just filled");
                // CascadePolicy inserts into sublevel 0 only.
                prop_assert_eq!(cache.geometry().sublevel(way), 0);
            }
        }
    }

    /// Energy accounting is monotone: more accesses never reduce any
    /// category.
    #[test]
    fn energy_is_monotone(addrs in prop::collection::vec(0u64..2048, 2..100)) {
        let mut cache = CacheLevel::new("c", geom_2level());
        let mut policy = CascadePolicy;
        let mut repl = Lru::new();
        let mut prev = Energy::ZERO;
        for (i, &a) in addrs.iter().enumerate() {
            let line = LineAddr(a);
            let hit = cache
                .access(line, AccessKind::Read, AccessClass::Demand, i as u64, &mut policy, &mut repl)
                .is_hit();
            if !hit {
                cache.fill(FillRequest::new(line), i as u64, &mut policy, &mut repl);
            }
            let total = cache.energy.total();
            prop_assert!(total >= prev);
            prev = total;
        }
    }
}
