//! Conformance subsystem for the SLIP reproduction: the correctness
//! harness that every hot-path optimization PR inherits instead of
//! re-deriving golden tests.
//!
//! Three pillars:
//!
//! * [`differential`] — a deterministic fuzzer replaying seed-derived
//!   adversarial traces (from [`adversarial`]) through the reference
//!   and optimized simulation paths, comparing full results bit-exactly
//!   and minimizing any divergence to its first offending access.
//! * [`invariants`] — the paper's structural claims (LRU stack
//!   property, no-promote-on-hit, 16-entry movement-queue bound,
//!   accounting conservation, EOU == exhaustive 2^S enumeration,
//!   Default-SLIP ≡ plain cache) as runtime checks.
//! * [`oracle`] — EXPERIMENTS.md's headline table (signs, orderings,
//!   tolerance bands) as data-driven assertions.
//!
//! Plus [`service`], which holds the `slip serve` daemon to the same
//! standard: a server-executed cell must be bit-identical to the same
//! cell from an offline `slip sweep`.
//!
//! The `slip check` CLI subcommand drives all three; `slip check
//! --quick` is the CI gate, the same command with the full budget is
//! the nightly run.

pub mod adversarial;
pub mod differential;
pub mod fastpath;
pub mod fused;
pub mod invariants;
pub mod oracle;
pub mod service;
pub mod shard;
pub mod topology;

pub use adversarial::{generate, Pattern};
pub use differential::{run_fuzz, Divergence, FuzzOptions, Scenario};
pub use fastpath::check_fastpath_determinism;
pub use fused::check_fused_determinism;
pub use invariants::{
    check_default_slip_equivalence, check_eou_exhaustive, run_with_invariants, standard_invariants,
    Invariant, Violation,
};
pub use oracle::{run_oracle, OracleReport, OracleRow};
pub use service::check_serve_determinism;
pub use shard::check_shard_determinism;
pub use topology::{check_spec_determinism, check_topology_determinism};

/// Runs the quick invariant sweep used by `slip check`: the standard
/// invariants over one adversarial trace per (pattern, policy) pairing,
/// plus the standalone EOU, Default-SLIP, serve-determinism,
/// shard-determinism, fused-determinism, fastpath-determinism, and
/// topology-determinism equivalence checks.
/// Returns every violation found (empty = clean).
pub fn run_invariant_sweep(seed: u64, trace_len: u64, quiet: bool) -> Vec<Violation> {
    use sim_engine::config::{PolicyKind, SystemConfig};

    let mut violations = Vec::new();
    for (i, pattern) in Pattern::ALL.into_iter().enumerate() {
        // Rotate policies across patterns so the sweep stays short but
        // every policy sees several families.
        let policy = PolicyKind::ALL[i % PolicyKind::ALL.len()];
        let scenario = format!("{pattern}/{policy:?}");
        if !quiet {
            eprintln!("  invariants: {scenario}");
        }
        let trace = adversarial::generate(pattern, seed ^ i as u64, trace_len);
        let config = SystemConfig::paper_45nm(policy);
        if let Err(v) = invariants::run_with_invariants(
            config,
            &scenario,
            &trace,
            1024,
            &mut standard_invariants(),
        ) {
            violations.push(v);
        }
    }
    if !quiet {
        eprintln!("  invariants: EOU exhaustive enumeration");
    }
    if let Err(v) = check_eou_exhaustive(seed, 60) {
        violations.push(v);
    }
    if !quiet {
        eprintln!("  invariants: Default-SLIP = plain cache lockstep");
    }
    if let Err(v) = check_default_slip_equivalence(seed, 40_000) {
        violations.push(v);
    }
    if !quiet {
        eprintln!("  invariants: serve = offline sweep, bit-exact");
    }
    if let Err(v) = service::check_serve_determinism(2_000, &std::env::temp_dir()) {
        violations.push(v);
    }
    if let Err(v) = shard::check_shard_determinism(seed, trace_len, quiet) {
        violations.push(v);
    }
    if let Err(v) = fused::check_fused_determinism(seed, trace_len, quiet) {
        violations.push(v);
    }
    if let Err(v) = fastpath::check_fastpath_determinism(seed, trace_len, quiet) {
        violations.push(v);
    }
    if let Err(v) = topology::check_topology_determinism(seed, trace_len, quiet) {
        violations.push(v);
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invariant_sweep_is_clean_at_small_budget() {
        let violations = run_invariant_sweep(0x511b, 1_200, true);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
