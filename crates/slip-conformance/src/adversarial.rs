//! Deterministic adversarial trace generation for the differential
//! fuzzer.
//!
//! Each [`Pattern`] is a family of access streams built to stress one
//! corner of the simulator that the synthetic SPEC-like workloads rarely
//! reach: set-conflict storms beyond the associativity, abrupt phase
//! changes, TLB thrash across thousands of pages, degenerate single-line
//! loops, addresses at the edges of the packed-word address space, and —
//! crucial for the SWAR tag probe — pairs of lines engineered to share
//! both their set index and their XOR-folded 16-bit tag, so a probe that
//! skipped the full-address verification would report false hits.
//!
//! Generation is a pure function of `(pattern, seed, len)`: the same
//! triple always yields the same `Vec<Access>`, which is what makes a
//! reported divergence reproducible from its one-line summary.

use cache_sim::addr::LINE_BYTES;
use cache_sim::rng::SplitMix64;
use cache_sim::Access;

/// Lines just below the sim-engine metadata region (`1 << 50`): the
/// largest line addresses a demand stream can use without aliasing the
/// distribution-metadata lines.
const MAX_DEMAND_LINE: u64 = (1 << 50) - 1;

/// One adversarial trace family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Hammers a handful of sets with far more distinct lines than the
    /// 16-way associativity, forcing constant eviction/demotion cascades.
    ConflictStorm,
    /// Alternates abruptly between a cache-friendly loop phase and a
    /// random-scan phase with a different address base, so per-page
    /// distributions and SLIP decisions flip mid-run.
    PhaseChange,
    /// Touches thousands of distinct pages round-robin so nearly every
    /// access misses the TLB and drags metadata traffic along.
    TlbThrash,
    /// A degenerate loop over one (sometimes two) lines with occasional
    /// writes: maximal hit-path and dirty-bit pressure, no variety.
    SingleLineLoop,
    /// Addresses at the edges of the packed-word space: line 0, lines
    /// just below the metadata region, and maximal page offsets.
    MaxAddressEdge,
    /// Pairs of lines that share set index *and* XOR-folded 16-bit tag;
    /// a tag probe without full-address verification reports false hits.
    TagAlias,
    /// Uniform random lines over a seed-chosen working-set size with
    /// random writes — the unstructured control group.
    RandomMix,
}

impl Pattern {
    /// Every family, in fuzz rotation order.
    pub const ALL: [Pattern; 7] = [
        Pattern::ConflictStorm,
        Pattern::PhaseChange,
        Pattern::TlbThrash,
        Pattern::SingleLineLoop,
        Pattern::MaxAddressEdge,
        Pattern::TagAlias,
        Pattern::RandomMix,
    ];

    /// CLI/report spelling.
    pub fn label(self) -> &'static str {
        match self {
            Pattern::ConflictStorm => "conflict-storm",
            Pattern::PhaseChange => "phase-change",
            Pattern::TlbThrash => "tlb-thrash",
            Pattern::SingleLineLoop => "single-line-loop",
            Pattern::MaxAddressEdge => "max-address-edge",
            Pattern::TagAlias => "tag-alias",
            Pattern::RandomMix => "random-mix",
        }
    }

    /// Parses a [`label`](Self::label) spelling; `None` for unknown.
    pub fn parse(s: &str) -> Option<Pattern> {
        Pattern::ALL
            .into_iter()
            .find(|p| p.label() == s.trim().to_ascii_lowercase())
    }
}

impl core::fmt::Display for Pattern {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

fn access(line: u64, write: bool) -> Access {
    let addr = line * LINE_BYTES;
    if write {
        Access::write(addr)
    } else {
        Access::read(addr)
    }
}

/// Generates the `(pattern, seed, len)` trace. Every produced address
/// is line-aligned and below the metadata region.
pub fn generate(pattern: Pattern, seed: u64, len: u64) -> Vec<Access> {
    let mut rng = SplitMix64::new(seed ^ 0xADF0_0D5E_ED00_0000);
    let mut out = Vec::with_capacity(len as usize);
    match pattern {
        Pattern::ConflictStorm => {
            // L2 has 256 sets, L3 has 2048; stride by the L3 set count
            // so the stream conflicts in *both* levels, over ~3x the
            // 16-way associativity.
            let sets = 2048u64;
            let hot_sets: Vec<u64> = (0..4).map(|_| rng.next_below(sets)).collect();
            let depth = 16 * 3;
            for _ in 0..len {
                let set = hot_sets[rng.next_below(hot_sets.len() as u64) as usize];
                let k = rng.next_below(depth);
                out.push(access(set + k * sets, rng.one_in(5)));
            }
        }
        Pattern::PhaseChange => {
            let phase_len = (len / 8).max(1);
            let loop_lines = 64 + rng.next_below(192);
            let loop_base = rng.next_below(1 << 30);
            let scan_base = rng.next_below(1 << 30) + (1 << 32);
            let mut i = 0u64;
            while (out.len() as u64) < len {
                let phase = i / phase_len;
                let line = if phase.is_multiple_of(2) {
                    loop_base + i % loop_lines
                } else {
                    scan_base + rng.next_below(1 << 20)
                };
                out.push(access(line, rng.one_in(8)));
                i += 1;
            }
        }
        Pattern::TlbThrash => {
            // Each 4 KiB page holds 64 lines; touching a fresh page per
            // access over far more pages than the TLB holds keeps the
            // miss path and metadata machinery permanently busy.
            let pages = 4096 + rng.next_below(4096);
            let base_page = rng.next_below(1 << 20);
            for i in 0..len {
                let page = base_page + i % pages;
                let line = page * 64 + rng.next_below(64);
                out.push(access(line, rng.one_in(6)));
            }
        }
        Pattern::SingleLineLoop => {
            let a = rng.next_below(1 << 30);
            let b = if rng.one_in(2) { a } else { a ^ 1 };
            for i in 0..len {
                let line = if i % 2 == 0 { a } else { b };
                out.push(access(line, rng.one_in(16)));
            }
        }
        Pattern::MaxAddressEdge => {
            for _ in 0..len {
                let line = match rng.next_below(4) {
                    0 => rng.next_below(64), // the very bottom
                    1 => MAX_DEMAND_LINE - rng.next_below(64),
                    2 => MAX_DEMAND_LINE - 2048 * rng.next_below(48),
                    // Maximal offsets within a random page.
                    _ => rng.next_below(1 << 38) * 64 + 63,
                };
                out.push(access(line, rng.one_in(4)));
            }
        }
        Pattern::TagAlias => {
            // `tag_of` XOR-folds the line address in 16-bit words and
            // both cache levels index sets by the low line bits, so
            // `line ^ (x << 16) ^ (x << 32)` shares set AND 16-bit tag
            // with `line` while being a different line. A probe that
            // matches tags without verifying the full address confuses
            // the two.
            let bases: Vec<u64> = (0..8).map(|_| rng.next_below(1 << 15)).collect();
            for _ in 0..len {
                let base = bases[rng.next_below(bases.len() as u64) as usize];
                let x = 1 + rng.next_below((1 << 16) - 1);
                let line = if rng.one_in(2) {
                    base
                } else {
                    base ^ (x << 16) ^ (x << 32)
                };
                out.push(access(line, rng.one_in(7)));
            }
        }
        Pattern::RandomMix => {
            let working_set = 1u64 << (10 + rng.next_below(12));
            let base = rng.next_below(1 << 34);
            for _ in 0..len {
                out.push(access(base + rng.next_below(working_set), rng.one_in(3)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_line_aligned() {
        for pattern in Pattern::ALL {
            let a = generate(pattern, 0x511b, 500);
            let b = generate(pattern, 0x511b, 500);
            assert_eq!(a, b, "{pattern}");
            assert_eq!(a.len(), 500, "{pattern}");
            assert!(
                a.iter().all(|x| x.addr % LINE_BYTES == 0),
                "{pattern} alignment"
            );
            // Stays out of the metadata line region.
            assert!(
                a.iter().all(|x| x.addr / LINE_BYTES < (1 << 50)),
                "{pattern} below metadata region"
            );
            let c = generate(pattern, 0x511c, 500);
            assert_ne!(a, c, "{pattern} must vary with the seed");
        }
    }

    #[test]
    fn labels_round_trip() {
        for pattern in Pattern::ALL {
            assert_eq!(Pattern::parse(pattern.label()), Some(pattern));
        }
        assert_eq!(Pattern::parse("bogus"), None);
    }

    #[test]
    fn tag_alias_pairs_share_fold_and_set() {
        // The aliasing construction preserves the XOR fold.
        let fold = |line: u64| -> u16 {
            (line as u16) ^ ((line >> 16) as u16) ^ ((line >> 32) as u16) ^ ((line >> 48) as u16)
        };
        let base = 0x1234u64;
        let x = 0xBEEFu64;
        let alias = base ^ (x << 16) ^ (x << 32);
        assert_ne!(base, alias);
        assert_eq!(fold(base), fold(alias));
        assert_eq!(base & 2047, alias & 2047, "same L3 set");
    }
}
