//! Fused-determinism check: a fused multi-policy group replay must be
//! bit-identical to each cell's standalone replay of the same buffer.
//!
//! This is the conformance-side guarantee backing `--trace-mode fused`:
//! fusing the decode (and sharing the policy-invariant L1) is purely an
//! execution strategy, never a modeling change. The check replays
//! adversarial trace families through [`run_group_from_buffer`] with
//! *all five* policies in one group and through the per-cell
//! [`run_workload_from_buffer`] path, comparing the encoded results
//! byte for byte — warmup included, so the group-wide measurement reset
//! at the warmup boundary is exercised too. An inclusive-LLC group is
//! covered as well: it must take the plain-lockstep fallback (no shared
//! L1) and still match.
//!
//! On a mismatch the check does not stop at "results differ": it
//! re-runs the diverging cell as a singleton fused group under
//! [`run_group_observed`], stepping a reference system in lockstep and
//! comparing the cheap [`SingleCoreSystem::probe`] counters after every
//! access — the violation then names the first diverging access, the
//! shortest prefix a debugging session needs to replay.

use crate::adversarial::{self, Pattern};
use crate::invariants::Violation;
use sim_engine::config::{PolicyKind, SystemConfig};
use sim_engine::pipeline::run_workload_from_buffer;
use sim_engine::{codec, run_group_from_buffer, run_group_observed, SingleCoreSystem};
use workloads::TraceBuffer;

/// First access at which a singleton fused replay of `config` diverges
/// from the plain per-access reference replay of the same buffer
/// (`None` when the probes agree at every step — the divergence lies in
/// finalization, not the access stream).
fn first_diverging_access(
    config: SystemConfig,
    scenario: &str,
    buffer: &TraceBuffer,
    warmup: u64,
) -> Option<u64> {
    let mut reference = SingleCoreSystem::new(config.clone());
    let mut stream = buffer.iter();
    let mut first = None;
    run_group_observed(vec![config], scenario, buffer, warmup, |i, group| {
        // Mirror the observed runner exactly: measurements reset
        // before the first post-warmup access steps.
        if i == warmup {
            reference.reset_measurements();
        }
        if let Some(access) = stream.next() {
            reference.step(access);
        }
        if reference.probe() != group[0].probe() {
            first = Some(i);
            return false;
        }
        true
    });
    first
}

/// Replays one adversarial trace per pattern through a fused group of
/// every policy and through each cell's standalone buffer replay,
/// requiring bit-identical encoded results. A slice of the trace is
/// treated as warmup so the fused group-wide measurement reset is
/// exercised as well.
pub fn check_fused_determinism(seed: u64, trace_len: u64, quiet: bool) -> Result<(), Violation> {
    // Shared-L1 groups across several trace families, plus one
    // inclusive-LLC group that must take the plain-lockstep fallback.
    let group_of = |inclusive: bool| -> Vec<SystemConfig> {
        PolicyKind::ALL
            .iter()
            .map(|&p| {
                let mut c = SystemConfig::paper_45nm(p);
                c.inclusive_llc = inclusive;
                c
            })
            .collect()
    };
    let cases: [(Pattern, bool); 4] = [
        (Pattern::ConflictStorm, false),
        (Pattern::TlbThrash, false),
        (Pattern::RandomMix, false),
        (Pattern::PhaseChange, true),
    ];
    for (i, (pattern, inclusive)) in cases.into_iter().enumerate() {
        let scenario = format!(
            "{pattern}/{}",
            if inclusive { "inclusive" } else { "shared-l1" }
        );
        if !quiet {
            eprintln!("  fused-determinism: {scenario}");
        }
        let trace = adversarial::generate(pattern, seed ^ ((i as u64) << 12), trace_len);
        let buffer = TraceBuffer::materialize(trace.iter().copied());
        let warmup = trace_len / 8;
        let configs = group_of(inclusive);
        let fused = run_group_from_buffer(configs.clone(), &scenario, &buffer, warmup);
        for (config, fused) in configs.into_iter().zip(fused) {
            let policy = config.policy;
            let solo = run_workload_from_buffer(config.clone(), &scenario, &buffer, warmup);
            let want = codec::encode_result(&solo).to_json();
            let got = codec::encode_result(&fused).to_json();
            if got != want {
                let at = first_diverging_access(config, &scenario, &buffer, warmup);
                return Err(Violation {
                    invariant: "fused-determinism",
                    scenario: format!("{scenario} policy={policy:?}"),
                    step: at,
                    detail: format!(
                        "fused group cell is not bit-identical to its standalone replay \
                         (seed {seed:#x}, {trace_len} accesses, warmup {warmup}); first \
                         diverging access: {}",
                        at.map_or("none (finalization)".to_owned(), |a| a.to_string())
                    ),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_groups_match_per_cell_over_adversarial_families() {
        if let Err(v) = check_fused_determinism(0x511b, 4_000, true) {
            panic!("{v}");
        }
    }

    #[test]
    fn divergence_localizer_agrees_on_clean_runs() {
        // On a clean configuration the probes never differ, so the
        // localizer reports no diverging access.
        let trace = adversarial::generate(Pattern::ConflictStorm, 0x511b, 1_500);
        let buffer = TraceBuffer::materialize(trace.iter().copied());
        let config = SystemConfig::paper_45nm(PolicyKind::SlipAbp);
        assert_eq!(first_diverging_access(config, "clean", &buffer, 200), None);
    }
}
