//! Topology determinism check: declarative hierarchy specs must be a
//! pure *description* change, never a modeling change.
//!
//! Three guarantees, per built-in node (`45nm`, `22nm`, `stt-llc`):
//!
//! 1. **Spec round-trip** — canonical `format()` output re-parses to a
//!    spec with the same canonical text and fingerprint, so journal
//!    keys and dedup hashes derived from the text are stable.
//! 2. **Run-mode matrix** — a small suite on the spec is bit-identical
//!    across every trace mode (inline, pipelined, shared, fused) and
//!    a sharded run, against the serial shared reference. The spec
//!    only changes *what* hierarchy is simulated, never lets an
//!    execution strategy leak into results.
//! 3. **45 nm equivalence** — `--topology 45nm` is bit-identical to
//!    the compiled-in hard-coded configuration, cell for cell.
//!
//! Plus a rejection sweep: malformed spec texts must fail to parse
//! with a diagnostic that names the offending line and column — a spec
//! that half-loads would silently simulate the wrong machine.

use crate::invariants::Violation;
use energy_model::HierarchySpec;
use sim_engine::codec;
use sim_engine::config::PolicyKind;
use sim_engine::experiments::{SuiteOptions, SuiteResults};
use sim_engine::{SweepConfig, TraceMode};

/// Runs a small suite for one topology under one execution
/// configuration and returns the per-cell encoded results in grid
/// order.
fn fingerprint_suite(
    options: &SuiteOptions,
    sweep: &SweepConfig,
) -> Result<Vec<String>, Violation> {
    let suite = SuiteResults::run_with(options.clone(), sweep).map_err(|e| Violation {
        invariant: "topology-determinism",
        scenario: "suite execution".to_owned(),
        step: None,
        detail: format!("suite run failed: {e}"),
    })?;
    let mut cells = Vec::new();
    for &b in suite.benchmarks() {
        for &p in &suite.options.policies {
            cells.push(codec::encode_result(suite.get(b, p)).to_json());
        }
    }
    Ok(cells)
}

/// Checks one hierarchy spec: round-trip stability, then the run-mode
/// matrix against the serial shared reference. Exposed so `slip check
/// --topology FILE` can hold a user-supplied spec to the same standard
/// as the built-ins.
pub fn check_spec_determinism(
    spec: &HierarchySpec,
    trace_len: u64,
    quiet: bool,
) -> Result<(), Violation> {
    let violation = |scenario: &str, detail: String| Violation {
        invariant: "topology-determinism",
        scenario: format!("{}/{scenario}", spec.name),
        step: None,
        detail,
    };

    // 1. Canonical round-trip: format -> parse -> format is identity,
    //    and the fingerprint (the journal/dedup hash) is stable.
    let canonical = spec.format();
    let reparsed = HierarchySpec::parse(&canonical)
        .map_err(|e| violation("round-trip", format!("canonical text failed to parse: {e}")))?;
    if reparsed.format() != canonical {
        return Err(violation(
            "round-trip",
            "format -> parse -> format is not the identity".to_owned(),
        ));
    }
    if reparsed.fingerprint() != spec.fingerprint() {
        return Err(violation(
            "round-trip",
            "fingerprint changed across a canonical round-trip".to_owned(),
        ));
    }

    // 2. Run-mode matrix: every execution strategy must produce the
    //    serial shared reference bit for bit.
    let options = SuiteOptions::paper_full()
        .with_benchmarks(&["gcc"])
        .with_policies(&[PolicyKind::Slip, PolicyKind::SlipAbp])
        .with_accesses(trace_len)
        .with_warmup(trace_len / 8)
        .with_topology(spec.clone());
    let reference = fingerprint_suite(&options, &SweepConfig::serial())?;
    let mode_matrix = [
        (
            "inline",
            SweepConfig::serial().with_trace_mode(TraceMode::Inline),
        ),
        (
            "pipelined",
            SweepConfig::serial().with_trace_mode(TraceMode::Pipelined),
        ),
        (
            "fused",
            SweepConfig::serial().with_trace_mode(TraceMode::Fused),
        ),
        ("shared/jobs=4", SweepConfig::with_jobs(4)),
        ("shared/shards=2", SweepConfig::serial().with_shards(2)),
    ];
    for (label, sweep) in mode_matrix {
        if !quiet {
            eprintln!("  topology-determinism: {}/{label}", spec.name);
        }
        let got = fingerprint_suite(&options, &sweep)?;
        if got != reference {
            return Err(violation(
                label,
                format!(
                    "run-mode matrix diverged from the serial shared reference \
                     ({trace_len} accesses); first differing cell index {}",
                    reference
                        .iter()
                        .zip(&got)
                        .position(|(a, b)| a != b)
                        .unwrap_or(reference.len().min(got.len())),
                ),
            ));
        }
    }
    Ok(())
}

/// Malformed spec texts that must be rejected, with the line and column
/// the diagnostic is required to name. Each entry is
/// `(description, spec text, line, col)`.
const MALFORMED: [(&str, &str, usize, usize); 4] = [
    (
        "zero energy",
        "node bad\nwire 0.16 0.3\ndram 0\neou 1.0\nmvq 0.3\n",
        3,
        6,
    ),
    (
        "non-power-of-two ways",
        "node bad\nwire 0.16 0.3\ndram 20\neou 1.0\nmvq 0.3\n\
         level l1\n  size 32KiB\n  sets 64\n  ways 6\n  banks 1\n  ports 1\n  latency 4\n  read 5\nend\n",
        9,
        8,
    ),
    (
        "duplicate level",
        "node bad\nwire 0.16 0.3\ndram 20\neou 1.0\nmvq 0.3\n\
         level l1\n  size 32KiB\n  sets 64\n  ways 8\n  banks 1\n  ports 1\n  latency 4\n  read 5\nend\n\
         level l1\n  size 32KiB\n  sets 64\n  ways 8\n  banks 1\n  ports 1\n  latency 4\n  read 5\nend\n",
        15,
        7,
    ),
    (
        "unknown directive",
        "node bad\nvoltage 1.1\n",
        2,
        1,
    ),
];

/// The full topology-determinism family: every built-in node passes
/// [`check_spec_determinism`], `45nm` is bit-identical to the
/// compiled-in configuration, and malformed specs are rejected with
/// line/column diagnostics.
pub fn check_topology_determinism(
    _seed: u64,
    trace_len: u64,
    quiet: bool,
) -> Result<(), Violation> {
    // Rejection sweep first: it is cheap and a parser that accepts
    // garbage makes the rest of the family meaningless.
    for (what, text, line, col) in MALFORMED {
        match HierarchySpec::parse(text) {
            Ok(_) => {
                return Err(Violation {
                    invariant: "topology-determinism",
                    scenario: format!("reject/{what}"),
                    step: None,
                    detail: "malformed spec was accepted".to_owned(),
                })
            }
            Err(e) => {
                if e.line != line || e.col != col {
                    return Err(Violation {
                        invariant: "topology-determinism",
                        scenario: format!("reject/{what}"),
                        step: None,
                        detail: format!(
                            "diagnostic points at line {}, col {} (expected line {line}, \
                             col {col}): {e}",
                            e.line, e.col
                        ),
                    });
                }
            }
        }
    }

    for name in energy_model::BUILTIN_NAMES {
        let spec = HierarchySpec::builtin(name).expect("built-in name");
        check_spec_determinism(&spec, trace_len, quiet)?;
    }

    // `--topology 45nm` must be the hard-coded configuration exactly:
    // same cells, bit for bit, through the default execution path.
    if !quiet {
        eprintln!("  topology-determinism: 45nm = compiled-in configuration");
    }
    let base = SuiteOptions::paper_full()
        .with_benchmarks(&["gcc", "soplex"])
        .with_policies(&[PolicyKind::Slip, PolicyKind::SlipAbp])
        .with_accesses(trace_len)
        .with_warmup(trace_len / 8);
    let hardcoded = fingerprint_suite(&base, &SweepConfig::serial())?;
    let speced = fingerprint_suite(
        &base.with_topology(HierarchySpec::builtin("45nm").expect("built-in")),
        &SweepConfig::serial(),
    )?;
    if hardcoded != speced {
        return Err(Violation {
            invariant: "topology-determinism",
            scenario: "45nm/hardcoded-equivalence".to_owned(),
            step: None,
            detail: format!(
                "the 45nm spec diverged from the compiled-in configuration; first \
                 differing cell index {}",
                hardcoded
                    .iter()
                    .zip(&speced)
                    .position(|(a, b)| a != b)
                    .unwrap_or(hardcoded.len().min(speced.len())),
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_topologies_are_deterministic_across_run_modes() {
        if let Err(v) = check_topology_determinism(0x511b, 4_000, true) {
            panic!("{v}");
        }
    }

    #[test]
    fn custom_asymmetric_spec_passes_the_same_bar() {
        // A hand-rolled 4-level-ish asymmetric hierarchy (STT-RAM L3
        // with a deeper sublevel split) holds up across the run-mode
        // matrix too — the family is not special-cased to built-ins.
        let spec = HierarchySpec::builtin("stt-llc").expect("built-in");
        let mut custom = spec;
        custom.name = "custom-asym".to_owned();
        if let Err(v) = check_spec_determinism(&custom, 3_000, true) {
            panic!("{v}");
        }
    }
}
