//! Executable invariants: the paper's structural claims as runtime
//! checks.
//!
//! An [`Invariant`] observes a running [`SingleCoreSystem`] at a
//! configurable stride (and the final [`SimResult`] once) and reports
//! the first violation with the step at which it was seen. The checks
//! are *outside* the simulator — they cost nothing unless a
//! conformance run wires them in, which is the "zero-cost unless
//! enabled" contract.
//!
//! Three invariants are standalone functions rather than trait
//! implementations because they drive their own hardware: the
//! exhaustive-EOU check (the fused kernel's pick equals the brute-force
//! argmin over all 2^S SLIPs), the q16 distribution quantization bound,
//! and the Default-SLIP ≡ plain-cache lockstep equivalence of paper
//! §3 ("the Default SLIP makes the cache behave exactly like a regular
//! cache").

use cache_sim::cache::AccessResult;
use cache_sim::rng::SplitMix64;
use cache_sim::{
    Access, AccessClass, BaselinePolicy, CacheLevel, CacheStats, FillRequest, LineAddr, Lru,
    MovementQueue,
};
use energy_model::{EnergyCategory, TECH_45NM};
use sim_engine::config::{PolicyKind, SystemConfig};
use sim_engine::{SimResult, SingleCoreSystem};
use slip_core::{
    EnergyOptimizerUnit, EouObjective, LevelModelParams, RdDistribution, Slip, SlipLevel,
    SlipPlacement,
};

/// One invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Name of the violated invariant.
    pub invariant: &'static str,
    /// Scenario or harness description.
    pub scenario: String,
    /// Access index at which the violation was observed (`None` for
    /// result-level and standalone checks).
    pub step: Option<u64>,
    /// What exactly went wrong.
    pub detail: String,
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invariant `{}` violated", self.invariant)?;
        if let Some(step) = self.step {
            write!(f, " at access {step}")?;
        }
        write!(f, "\n  scenario: {}\n  {}", self.scenario, self.detail)
    }
}

/// A runtime-checkable structural property of the simulation.
///
/// Both hooks default to "always holds", so an invariant implements
/// only the one it needs.
pub trait Invariant {
    /// Name used in reports.
    fn name(&self) -> &'static str;

    /// Checks the live system state; called every stride accesses and
    /// once after the trace ends.
    fn check_system(
        &mut self,
        _system: &SingleCoreSystem,
        _config: &SystemConfig,
        _step: u64,
    ) -> Result<(), String> {
        Ok(())
    }

    /// Checks the finished result.
    fn check_result(&mut self, _result: &SimResult) -> Result<(), String> {
        Ok(())
    }
}

/// Paper §3: within every set, valid lines carry pairwise-distinct LRU
/// sequence numbers (the stack property the replacement policies assume).
pub struct LruStackProperty;

impl Invariant for LruStackProperty {
    fn name(&self) -> &'static str {
        "lru-stack-property"
    }

    fn check_system(
        &mut self,
        system: &SingleCoreSystem,
        _config: &SystemConfig,
        _step: u64,
    ) -> Result<(), String> {
        for (label, level) in [("L2", system.l2()), ("L3", system.l3())] {
            let geom = level.geometry();
            let mut seqs: Vec<u64> = Vec::with_capacity(geom.ways);
            for set in 0..geom.sets {
                seqs.clear();
                for way in 0..geom.ways {
                    let line = level.line_at(set, way);
                    if line.valid {
                        seqs.push(line.lru_seq);
                    }
                }
                seqs.sort_unstable();
                if seqs.windows(2).any(|w| w[0] == w[1]) {
                    return Err(format!(
                        "{label} set {set} has duplicate lru_seq among valid lines: {seqs:?}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Paper §4.3: SLIP never promotes on a hit — lines only move *down*
/// their SLIP's chunks. (NuRAPID and LRU-PEA promote by design, so the
/// check applies to SLIP policies only.)
pub struct NoPromoteOnHit;

impl Invariant for NoPromoteOnHit {
    fn name(&self) -> &'static str {
        "no-promote-on-hit"
    }

    fn check_system(
        &mut self,
        system: &SingleCoreSystem,
        config: &SystemConfig,
        _step: u64,
    ) -> Result<(), String> {
        if !config.policy.is_slip() && config.policy != PolicyKind::Baseline {
            return Ok(());
        }
        for (label, level) in [("L2", system.l2()), ("L3", system.l3())] {
            if level.stats.promotions != 0 {
                return Err(format!(
                    "{label} recorded {} promotions under {:?}",
                    level.stats.promotions, config.policy
                ));
            }
        }
        Ok(())
    }
}

/// Paper §5: the movement queue is a 16-entry structure; occupancy may
/// never exceed its capacity.
pub struct MovementQueueBound;

impl Invariant for MovementQueueBound {
    fn name(&self) -> &'static str {
        "movement-queue-bound"
    }

    fn check_system(
        &mut self,
        system: &SingleCoreSystem,
        _config: &SystemConfig,
        _step: u64,
    ) -> Result<(), String> {
        for (label, level) in [("L2", system.l2()), ("L3", system.l3())] {
            let q: &MovementQueue = &level.movement_queue;
            if q.occupancy() > q.capacity() {
                return Err(format!(
                    "{label} movement queue occupancy {} exceeds capacity {}",
                    q.occupancy(),
                    q.capacity()
                ));
            }
        }
        Ok(())
    }
}

/// Counter and energy conservation: hits + misses == accesses at every
/// level, sublevel hit counts sum to the hit totals, insertion classes
/// account for every fill (cached or bypassed), and each energy account
/// decomposes exactly into its Figure 11 category groups.
pub struct AccountingConservation;

fn check_stats(label: &str, s: &CacheStats) -> Result<(), String> {
    if s.demand_hits + s.demand_misses != s.demand_accesses {
        return Err(format!(
            "{label}: demand hits {} + misses {} != accesses {}",
            s.demand_hits, s.demand_misses, s.demand_accesses
        ));
    }
    if s.metadata_hits + s.metadata_misses != s.metadata_accesses {
        return Err(format!(
            "{label}: metadata hits {} + misses {} != accesses {}",
            s.metadata_hits, s.metadata_misses, s.metadata_accesses
        ));
    }
    let sublevel_hits: u64 = s.hits_per_sublevel.iter().sum();
    if sublevel_hits != s.demand_hits + s.metadata_hits {
        return Err(format!(
            "{label}: sublevel hits {} != demand {} + metadata {} hits",
            sublevel_hits, s.demand_hits, s.metadata_hits
        ));
    }
    let classes: u64 = s.insertion_class.iter().sum();
    if classes != s.insertions + s.bypasses {
        return Err(format!(
            "{label}: insertion classes {} != insertions {} + bypasses {}",
            classes, s.insertions, s.bypasses
        ));
    }
    Ok(())
}

impl Invariant for AccountingConservation {
    fn name(&self) -> &'static str {
        "accounting-conservation"
    }

    fn check_result(&mut self, r: &SimResult) -> Result<(), String> {
        check_stats("L1", &r.l1_stats)?;
        check_stats("L2", &r.l2_stats)?;
        check_stats("L3", &r.l3_stats)?;
        for (label, acct) in [
            ("L1", &r.l1_energy),
            ("L2", &r.l2_energy),
            ("L3", &r.l3_energy),
            ("DRAM", &r.dram_energy),
        ] {
            let parts = acct.access_energy()
                + acct.movement_energy()
                + acct.overhead_energy()
                + acct.get(EnergyCategory::Dram);
            // Exact: both sides fold the same category array.
            if (parts - acct.total()).as_pj().abs() > 1e-9 {
                return Err(format!(
                    "{label}: categories sum to {} but total is {}",
                    parts,
                    acct.total()
                ));
            }
        }
        if r.policy == PolicyKind::Baseline {
            for (label, acct) in [("L2", &r.l2_energy), ("L3", &r.l3_energy)] {
                if !acct.overhead_energy().is_zero() {
                    return Err(format!(
                        "{label}: baseline run charged SLIP overhead energy {}",
                        acct.overhead_energy()
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The default invariant set checked by `slip check`.
pub fn standard_invariants() -> Vec<Box<dyn Invariant>> {
    vec![
        Box::new(LruStackProperty),
        Box::new(NoPromoteOnHit),
        Box::new(MovementQueueBound),
        Box::new(AccountingConservation),
    ]
}

/// Replays `trace` under `config`, running every invariant's system
/// hook each `stride` accesses and the result hooks at the end.
/// Returns the result on success, the first violation otherwise.
pub fn run_with_invariants(
    config: SystemConfig,
    scenario: &str,
    trace: &[Access],
    stride: u64,
    invariants: &mut [Box<dyn Invariant>],
) -> Result<SimResult, Violation> {
    let check_config = config.clone();
    let mut system = SingleCoreSystem::new(config);
    for (i, access) in trace.iter().enumerate() {
        system.step(*access);
        let step = i as u64 + 1;
        if step.is_multiple_of(stride) || step == trace.len() as u64 {
            for inv in invariants.iter_mut() {
                if let Err(detail) = inv.check_system(&system, &check_config, step) {
                    return Err(Violation {
                        invariant: inv.name(),
                        scenario: scenario.to_string(),
                        step: Some(step),
                        detail,
                    });
                }
            }
        }
    }
    let result = system.finish(scenario.to_owned());
    for inv in invariants.iter_mut() {
        if let Err(detail) = inv.check_result(&result) {
            return Err(Violation {
                invariant: inv.name(),
                scenario: scenario.to_string(),
                step: None,
                detail,
            });
        }
    }
    Ok(result)
}

fn level_params() -> (LevelModelParams, LevelModelParams) {
    (
        LevelModelParams::from_level(&TECH_45NM.l2, TECH_45NM.l3.mean_access()),
        LevelModelParams::from_level(&TECH_45NM.l3, TECH_45NM.dram_line_energy()),
    )
}

/// Brute-force argmin over every SLIP, replicating the EOU tie-break:
/// start from the Default SLIP, prefer strictly lower energy, skip the
/// All-Bypass Policy when forbidden.
fn exhaustive_best(eou: &EnergyOptimizerUnit, probs: &[f64]) -> (Slip, f64) {
    let sublevels = probs.len() - 1;
    let mut best = Slip::default_slip(sublevels).expect("valid sublevel count");
    let mut best_e = eou.evaluate(best, probs).as_pj();
    for slip in Slip::enumerate(sublevels) {
        if slip.is_all_bypass() && !eou.allows_all_bypass() {
            continue;
        }
        let e = eou.evaluate(slip, probs).as_pj();
        if e < best_e {
            best = slip;
            best_e = e;
        }
    }
    (best, best_e)
}

/// Checks, over `iters` random reuse-distance distributions per
/// configuration, that the fused EOU kernel, the allocating reference
/// path, and an exhaustive enumeration over all 2^S SLIPs agree
/// bit-for-bit — for both cache levels, both objectives, and with the
/// All-Bypass Policy allowed and forbidden.
pub fn check_eou_exhaustive(seed: u64, iters: u64) -> Result<(), Violation> {
    let (l2, l3) = level_params();
    let mut rng = SplitMix64::new(seed ^ 0xE0_0E0);
    for (level, params) in [("L2", &l2), ("L3", &l3)] {
        for objective in [EouObjective::InsertionAware, EouObjective::PaperLiteral] {
            for allow_abp in [true, false] {
                let mut eou = EnergyOptimizerUnit::with_objective(params, objective);
                if !allow_abp {
                    eou = eou.forbid_all_bypass();
                }
                let scenario = format!("level={level} objective={objective:?} abp={allow_abp}");
                for i in 0..iters {
                    let mut dist = RdDistribution::paper_default();
                    // Random profile, occasionally empty or saturated.
                    let observations = if i % 7 == 0 { 0 } else { rng.next_below(64) };
                    for _ in 0..observations {
                        dist.observe(rng.next_below(4) as usize);
                    }
                    let kernel = eou.optimize(&dist);
                    let reference = eou.optimize_reference(&dist);
                    if kernel.slip != reference.slip
                        || kernel.estimated_energy.as_pj().to_bits()
                            != reference.estimated_energy.as_pj().to_bits()
                    {
                        return Err(Violation {
                            invariant: "eou-kernel-vs-reference",
                            scenario,
                            step: Some(i),
                            detail: format!(
                                "kernel {:?}@{} vs reference {:?}@{} for {:?}",
                                kernel.slip,
                                kernel.estimated_energy,
                                reference.slip,
                                reference.estimated_energy,
                                dist
                            ),
                        });
                    }
                    if dist.is_empty() {
                        if !kernel.slip.is_default() {
                            return Err(Violation {
                                invariant: "eou-empty-dist-default",
                                scenario,
                                step: Some(i),
                                detail: format!("empty profile produced {:?}", kernel.slip),
                            });
                        }
                        continue;
                    }
                    let probs = dist.probabilities();
                    let (best, _) = exhaustive_best(&eou, &probs);
                    if kernel.slip != best {
                        return Err(Violation {
                            invariant: "eou-exhaustive-argmin",
                            scenario,
                            step: Some(i),
                            detail: format!(
                                "kernel chose {:?} but exhaustive argmin is {:?} for {:?}",
                                kernel.slip, best, dist
                            ),
                        });
                    }
                    if !allow_abp && kernel.slip.is_all_bypass() {
                        return Err(Violation {
                            invariant: "eou-abp-forbidden",
                            scenario,
                            step: Some(i),
                            detail: format!("ABP chosen while forbidden for {:?}", dist),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Paper §3: a SLIP cache whose every fill carries the Default SLIP is
/// indistinguishable from a regular cache. Drives two identical
/// geometries — one under [`BaselinePolicy`], one under
/// [`SlipPlacement`] with Default-SLIP fills — in lockstep over a
/// random access stream and compares hit/miss, hit way, eviction
/// stream, and final statistics.
pub fn check_default_slip_equivalence(seed: u64, accesses: u64) -> Result<(), Violation> {
    let violation = |step: Option<u64>, detail: String| Violation {
        invariant: "default-slip-plain-cache-equivalence",
        scenario: format!("seed={seed:#x} accesses={accesses}"),
        step,
        detail,
    };
    // The paper's L2 geometry; identical `total_lines` seeds identical
    // victim-selection RNG streams in both levels, keeping the lockstep
    // comparison meaningful.
    let geom = || SystemConfig::paper_45nm(PolicyKind::Baseline).l2_geometry();
    let mut plain = CacheLevel::new("plain", geom());
    let mut slip = CacheLevel::new("default-slip", geom());
    let mut plain_policy = BaselinePolicy::new();
    let mut slip_policy = SlipPlacement::new(SlipLevel::L2, &geom());
    let mut plain_repl = Lru::new();
    let mut slip_repl = Lru::new();
    let default_code = Slip::default_slip(3).expect("3 sublevels").code();

    let mut rng = SplitMix64::new(seed ^ 0xDE_FA17);
    for step in 0..accesses {
        let line = LineAddr(rng.next_below(8 * 256 * 16));
        let kind = if rng.one_in(4) {
            cache_sim::AccessKind::Write
        } else {
            cache_sim::AccessKind::Read
        };
        let a = plain.access(
            line,
            kind,
            AccessClass::Demand,
            step,
            &mut plain_policy,
            &mut plain_repl,
        );
        let b = slip.access(
            line,
            kind,
            AccessClass::Demand,
            step,
            &mut slip_policy,
            &mut slip_repl,
        );
        if a.is_hit() != b.is_hit() {
            return Err(violation(
                Some(step),
                format!(
                    "line {line:?}: plain hit={} slip hit={}",
                    a.is_hit(),
                    b.is_hit()
                ),
            ));
        }
        if let (AccessResult::Hit(_), AccessResult::Hit(_)) = (&a, &b) {
            if plain.probe_way(line) != slip.probe_way(line) {
                return Err(violation(
                    Some(step),
                    format!(
                        "line {line:?} resides in way {:?} (plain) vs {:?} (default SLIP)",
                        plain.probe_way(line),
                        slip.probe_way(line)
                    ),
                ));
            }
            continue;
        }
        let mut req = FillRequest::new(line);
        req.dirty = kind == cache_sim::AccessKind::Write;
        req.slip_codes = [default_code, default_code];
        let oa = plain.fill(req, step, &mut plain_policy, &mut plain_repl);
        let ob = slip.fill(req, step, &mut slip_policy, &mut slip_repl);
        if ob.bypassed {
            return Err(violation(Some(step), "Default-SLIP fill bypassed".into()));
        }
        // Evicted lines must match by address and dirtiness; SLIP
        // metadata on the evicted copies legitimately differs.
        let key = |o: &cache_sim::FillOutcome| {
            let mut v: Vec<(u64, bool)> = o.evicted().map(|e| (e.addr.0, e.dirty)).collect();
            v.sort_unstable();
            v
        };
        if key(&oa) != key(&ob) {
            return Err(violation(
                Some(step),
                format!("eviction streams differ: {:?} vs {:?}", key(&oa), key(&ob)),
            ));
        }
    }
    let (p, s) = (&plain.stats, &slip.stats);
    let pairs = [
        ("demand_hits", p.demand_hits, s.demand_hits),
        ("demand_misses", p.demand_misses, s.demand_misses),
        ("insertions", p.insertions, s.insertions),
        ("evictions", p.evictions, s.evictions),
        ("writebacks", p.writebacks, s.writebacks),
        ("movements", 0, s.movements),
        (
            "resident",
            plain.resident_lines() as u64,
            slip.resident_lines() as u64,
        ),
    ];
    for (name, a, b) in pairs {
        if a != b {
            return Err(violation(
                None,
                format!("final {name} differ: plain {a} vs default-SLIP {b}"),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversarial::{self, Pattern};

    #[test]
    fn standard_invariants_hold_on_adversarial_traces() {
        for (pattern, policy) in [
            (Pattern::ConflictStorm, PolicyKind::SlipAbp),
            (Pattern::TagAlias, PolicyKind::Slip),
            (Pattern::SingleLineLoop, PolicyKind::Baseline),
            (Pattern::RandomMix, PolicyKind::NuRapid),
        ] {
            let trace = adversarial::generate(pattern, 0x511b, 3_000);
            let config = SystemConfig::paper_45nm(policy);
            let result = run_with_invariants(
                config,
                &format!("{pattern}/{policy:?}"),
                &trace,
                512,
                &mut standard_invariants(),
            );
            match result {
                Ok(r) => assert_eq!(r.accesses, 3_000),
                Err(v) => panic!("{v}"),
            }
        }
    }

    #[test]
    fn eou_matches_exhaustive_enumeration() {
        if let Err(v) = check_eou_exhaustive(0x511b, 40) {
            panic!("{v}");
        }
    }

    #[test]
    fn default_slip_equals_plain_cache() {
        if let Err(v) = check_default_slip_equivalence(0x511b, 20_000) {
            panic!("{v}");
        }
    }

    #[test]
    fn violations_render_with_context() {
        let v = Violation {
            invariant: "demo",
            scenario: "unit".into(),
            step: Some(7),
            detail: "something drifted".into(),
        };
        let text = v.to_string();
        assert!(text.contains("demo") && text.contains("access 7"));
    }
}
