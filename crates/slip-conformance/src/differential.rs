//! Deterministic differential fuzzing of the reference vs optimized
//! simulation paths.
//!
//! Every iteration derives a [`Scenario`] purely from `(master seed,
//! iteration index)`: an adversarial trace family, a placement policy,
//! a replacement policy, an EOU objective, and the trace/config seeds.
//! The scenario is replayed through the *reference* hot path
//! (`SystemConfig::reference_hot_path = true`: line-array probes and
//! the allocating f64 EOU loop) and through the *optimized* paths (SWAR
//! tag filter, fused q16-distribution EOU kernel) in several execution
//! modes — inline stepping, chunked replay from a packed
//! [`TraceBuffer`], and (for workload-spec iterations) the pipelined
//! producer thread. The full [`sim_engine::SimResult`] of every variant
//! is compared bit-exactly via the JSON codec, which excludes only wall
//! time.
//!
//! On divergence the trace prefix is binary-searched for the first
//! length at which the variant disagrees, and the offending access is
//! reported together with a one-line repro command; re-running with the
//! same master seed re-derives the identical scenario.

use crate::adversarial::{self, Pattern};
use cache_sim::rng::SplitMix64;
use cache_sim::Access;
use sim_engine::codec;
use sim_engine::config::{PolicyKind, ReplacementKind, SystemConfig};
use sim_engine::pipeline::{run_workload_from_buffer, run_workload_pipelined};
use sim_engine::system::run_workload_with_warmup;
use sim_engine::SingleCoreSystem;
use slip_core::EouObjective;
use workloads::TraceBuffer;

/// Fully derived description of one fuzz iteration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Adversarial trace family (ignored on workload-spec iterations).
    pub pattern: Pattern,
    /// Placement policy under test.
    pub policy: PolicyKind,
    /// Replacement policy within candidate ways.
    pub replacement: ReplacementKind,
    /// EOU objective variant.
    pub objective: EouObjective,
    /// Whether the LLC is modelled inclusive.
    pub inclusive_llc: bool,
    /// Seed for the adversarial trace generator.
    pub trace_seed: u64,
    /// Master seed for the system's stochastic components.
    pub config_seed: u64,
    /// Trace length in accesses.
    pub len: u64,
    /// `Some(benchmark)` for iterations that exercise the
    /// workload-spec-driven paths (pipelined producer) instead of an
    /// adversarial trace.
    pub benchmark: Option<&'static str>,
}

impl Scenario {
    /// Derives iteration `iteration`'s scenario from the master seed.
    /// Pure: the same `(master_seed, iteration, max_len)` triple always
    /// yields the same scenario.
    pub fn derive(master_seed: u64, iteration: u64, max_len: u64) -> Scenario {
        let mut rng = SplitMix64::new(master_seed ^ iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        const POLICIES: [PolicyKind; 5] = PolicyKind::ALL;
        const REPLACEMENTS: [ReplacementKind; 3] = [
            ReplacementKind::Lru,
            ReplacementKind::Drrip,
            ReplacementKind::Ship,
        ];
        let pattern = Pattern::ALL[(iteration % Pattern::ALL.len() as u64) as usize];
        let policy = POLICIES[rng.next_below(POLICIES.len() as u64) as usize];
        // LRU is the paper default and the most intricate demotion
        // cascade; keep it in the majority of iterations.
        let replacement = if rng.one_in(3) {
            REPLACEMENTS[1 + rng.next_below(2) as usize]
        } else {
            ReplacementKind::Lru
        };
        let objective = if rng.one_in(4) {
            EouObjective::PaperLiteral
        } else {
            EouObjective::InsertionAware
        };
        // Every 5th iteration drives the workload-spec paths (pipelined
        // producer + packed-buffer replay) with a real benchmark trace.
        let benchmark = if iteration % 5 == 4 {
            let names = workloads::BENCHMARK_NAMES;
            Some(names[rng.next_below(names.len() as u64) as usize])
        } else {
            None
        };
        Scenario {
            pattern,
            policy,
            replacement,
            objective,
            inclusive_llc: rng.one_in(5),
            trace_seed: rng.next_u64(),
            config_seed: rng.next_u64(),
            len: max_len / 2 + rng.next_below(max_len / 2 + 1),
            benchmark,
        }
    }

    /// Builds this scenario's system configuration. `reference` selects
    /// the pre-optimization hot path.
    pub fn config(&self, reference: bool) -> SystemConfig {
        let mut config = SystemConfig::paper_45nm(self.policy);
        config.replacement = self.replacement;
        config.eou_objective = self.objective;
        config.inclusive_llc = self.inclusive_llc;
        config.seed = self.config_seed;
        config.reference_hot_path = reference;
        config
    }

    /// One-line human summary used in divergence reports.
    pub fn describe(&self) -> String {
        match self.benchmark {
            Some(b) => format!(
                "benchmark={b} policy={:?} repl={:?} obj={:?} incl={} cfg_seed={:#x} len={}",
                self.policy,
                self.replacement,
                self.objective,
                self.inclusive_llc,
                self.config_seed,
                self.len
            ),
            None => format!(
                "pattern={} policy={:?} repl={:?} obj={:?} incl={} trace_seed={:#x} \
                 cfg_seed={:#x} len={}",
                self.pattern,
                self.policy,
                self.replacement,
                self.objective,
                self.inclusive_llc,
                self.trace_seed,
                self.config_seed,
                self.len
            ),
        }
    }
}

/// Fuzzing budget and reporting knobs.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Number of scenarios to run.
    pub iters: u64,
    /// Master seed; every scenario derives from it deterministically.
    pub seed: u64,
    /// Upper bound on per-scenario trace length (actual lengths are
    /// seed-chosen in `[max_len/2, max_len]`).
    pub max_len: u64,
    /// Suppress per-iteration progress on stderr.
    pub quiet: bool,
}

impl FuzzOptions {
    /// The CI budget: bounded, deterministic, a few seconds of work.
    pub fn quick(seed: u64) -> FuzzOptions {
        FuzzOptions {
            iters: 48,
            seed,
            max_len: 6_000,
            quiet: false,
        }
    }

    /// The nightly budget: an order of magnitude more scenarios at
    /// longer trace lengths.
    pub fn full(seed: u64) -> FuzzOptions {
        FuzzOptions {
            iters: 512,
            seed,
            max_len: 20_000,
            quiet: false,
        }
    }
}

/// One reference-vs-optimized disagreement, minimized where possible.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Iteration index within the fuzz run.
    pub iteration: u64,
    /// Human description of the derived scenario.
    pub scenario: String,
    /// Which optimized execution mode disagreed.
    pub variant: &'static str,
    /// Shortest trace prefix that still diverges, when the variant
    /// supports prefix replay.
    pub minimized_len: Option<u64>,
    /// The access at the end of the minimized prefix — the first point
    /// at which the paths can be told apart.
    pub offending: Option<Access>,
    /// Command that re-derives and re-runs this exact scenario.
    pub repro: String,
}

impl core::fmt::Display for Divergence {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "divergence at iteration {} [{}]",
            self.iteration, self.variant
        )?;
        writeln!(f, "  scenario: {}", self.scenario)?;
        if let Some(n) = self.minimized_len {
            writeln!(
                f,
                "  minimized: first {n} accesses reproduce the divergence"
            )?;
        }
        if let Some(a) = self.offending {
            writeln!(f, "  offending access: {:?} addr {:#x}", a.kind, a.addr)?;
        }
        write!(f, "  repro: {}", self.repro)
    }
}

/// Replays `trace` inline under `config` and returns the codec
/// fingerprint of the full result (wall time excluded by the codec).
fn fingerprint_inline(config: SystemConfig, trace: &[Access]) -> String {
    let mut system = SingleCoreSystem::new(config);
    system.run(trace.iter().copied());
    fingerprint(system)
}

/// Replays `trace` through the packed-buffer chunked path.
fn fingerprint_chunked(config: SystemConfig, trace: &[Access]) -> String {
    let buffer = TraceBuffer::materialize(trace.iter().copied());
    let mut system = SingleCoreSystem::new(config);
    system.run_chunks(buffer.chunks());
    fingerprint(system)
}

fn fingerprint(system: SingleCoreSystem) -> String {
    codec::encode_result(&system.finish("fuzz")).to_json()
}

/// Binary-searches the shortest prefix of `trace` on which `diverges`
/// still reports a mismatch. `diverges(trace.len())` must be true.
fn minimize(trace: &[Access], mut diverges: impl FnMut(&[Access]) -> bool) -> u64 {
    let (mut lo, mut hi) = (1u64, trace.len() as u64);
    // Invariant: the prefix of length `hi` diverges.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if diverges(&trace[..mid as usize]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Runs the differential fuzzer and returns every divergence found.
/// Deterministic: the same options always visit the same scenarios in
/// the same order.
pub fn run_fuzz(opts: &FuzzOptions) -> Vec<Divergence> {
    let mut findings = Vec::new();
    for iteration in 0..opts.iters {
        let scenario = Scenario::derive(opts.seed, iteration, opts.max_len);
        if !opts.quiet {
            eprintln!(
                "  fuzz {:>4}/{}: {}",
                iteration + 1,
                opts.iters,
                scenario.describe()
            );
        }
        let repro = format!(
            "slip check --seed {:#x} --iters {} --max-len {}",
            opts.seed,
            iteration + 1,
            opts.max_len
        );
        match scenario.benchmark {
            None => fuzz_adversarial(iteration, &scenario, &repro, &mut findings),
            Some(bench) => fuzz_workload(iteration, &scenario, bench, &repro, &mut findings),
        }
    }
    findings
}

/// One optimized execution mode under test: display label + runner.
type FuzzVariant = (&'static str, fn(SystemConfig, &[Access]) -> String);

/// Adversarial-trace iteration: reference inline vs optimized inline
/// and optimized chunked-buffer replay, with prefix minimization.
fn fuzz_adversarial(
    iteration: u64,
    scenario: &Scenario,
    repro: &str,
    findings: &mut Vec<Divergence>,
) {
    let trace = adversarial::generate(scenario.pattern, scenario.trace_seed, scenario.len);
    let reference = fingerprint_inline(scenario.config(true), &trace);
    let variants: [FuzzVariant; 2] = [
        ("optimized-inline", fingerprint_inline),
        ("optimized-chunked", fingerprint_chunked),
    ];
    for (variant, run) in variants {
        if run(scenario.config(false), &trace) == reference {
            continue;
        }
        // The first mismatching prefix pins down the offending access.
        let n = minimize(&trace, |prefix| {
            fingerprint_inline(scenario.config(true), prefix) != run(scenario.config(false), prefix)
        });
        findings.push(Divergence {
            iteration,
            scenario: scenario.describe(),
            variant,
            minimized_len: Some(n),
            offending: trace.get(n as usize - 1).copied(),
            repro: repro.to_string(),
        });
    }
}

/// Workload-spec iteration: the spec-driven reference run vs the
/// pipelined producer and the packed-buffer replay. These three build
/// the identical trace from `(spec, seed)`, so their results must be
/// bit-identical too.
fn fuzz_workload(
    iteration: u64,
    scenario: &Scenario,
    bench: &str,
    repro: &str,
    findings: &mut Vec<Divergence>,
) {
    let spec = workloads::workload(bench).expect("benchmark name from BENCHMARK_NAMES");
    let warmup = scenario.len / 10;
    let len = scenario.len - warmup;
    let reference = codec::encode_result(&run_workload_with_warmup(
        scenario.config(true),
        &spec,
        len,
        warmup,
    ))
    .to_json();
    let pipelined = codec::encode_result(&run_workload_pipelined(
        scenario.config(false),
        &spec,
        len,
        warmup,
    ))
    .to_json();
    if pipelined != reference {
        findings.push(Divergence {
            iteration,
            scenario: scenario.describe(),
            variant: "optimized-pipelined",
            // The producer thread is internal to the pipelined runner;
            // prefixes cannot be replayed through it, so report the
            // divergence unminimized.
            minimized_len: None,
            offending: None,
            repro: repro.to_string(),
        });
    }
    let buffer = TraceBuffer::materialize(spec.trace(warmup + len, scenario.config_seed));
    let buffered = codec::encode_result(&run_workload_from_buffer(
        scenario.config(false),
        bench,
        &buffer,
        warmup,
    ))
    .to_json();
    if buffered != reference {
        findings.push(Divergence {
            iteration,
            scenario: scenario.describe(),
            variant: "optimized-buffered",
            minimized_len: None,
            offending: None,
            repro: repro.to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_derivation_is_deterministic() {
        for i in 0..20 {
            let a = Scenario::derive(0x511b, i, 4096);
            let b = Scenario::derive(0x511b, i, 4096);
            assert_eq!(a.describe(), b.describe());
            assert!(a.len >= 2048 && a.len <= 4096, "len {} in band", a.len);
        }
        // Workload-spec iterations land exactly on every 5th index.
        assert!(Scenario::derive(1, 4, 4096).benchmark.is_some());
        assert!(Scenario::derive(1, 3, 4096).benchmark.is_none());
    }

    #[test]
    fn minimize_finds_first_divergent_prefix() {
        let trace: Vec<Access> = (0..100).map(|i| Access::read(i * 64)).collect();
        // Pretend the paths disagree from access 37 onward.
        let n = minimize(&trace, |prefix| prefix.len() >= 37);
        assert_eq!(n, 37);
        let all = minimize(&trace, |prefix| prefix.len() >= 100);
        assert_eq!(all, 100);
    }

    /// A handful of real fuzz iterations as a tier-1 smoke test; the
    /// full budget runs through `slip check`.
    #[test]
    fn short_fuzz_run_is_clean() {
        let opts = FuzzOptions {
            iters: 6,
            seed: 0x511b,
            max_len: 1_500,
            quiet: true,
        };
        let findings = run_fuzz(&opts);
        assert!(
            findings.is_empty(),
            "unexpected divergences: {:?}",
            findings
        );
    }
}
