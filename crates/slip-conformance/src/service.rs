//! Server-determinism check: a cell executed by the `slip serve`
//! daemon must be bit-identical to the same cell executed by a plain
//! offline `slip sweep`.
//!
//! The serve path differs from the offline path in every way that
//! could plausibly leak into results — a shared worker pool, the
//! server-wide trace LRU, journal persistence, JSON round trips over
//! TCP — so this check boots a real loopback server, streams a small
//! sweep through it, and compares the payloads byte for byte against
//! [`SuiteResults::run_with`].

use crate::invariants::Violation;
use sim_engine::codec;
use sim_engine::experiments::suite::SweepConfig;
use sim_engine::experiments::SuiteResults;
use slip_serve::{client, Server, ServerConfig, SweepSpec};
use std::path::Path;

/// Runs a 1-benchmark × 2-policy sweep through an in-process loopback
/// server and through the offline sweep path, requiring bit-identical
/// encoded results. `journal_dir` holds the throwaway server journal.
pub fn check_serve_determinism(accesses: u64, journal_dir: &Path) -> Result<(), Violation> {
    let violation = |detail: String| Violation {
        invariant: "serve-determinism",
        scenario: format!("gcc x [baseline, SLIP+ABP] @ {accesses} accesses via loopback serve"),
        step: None,
        detail,
    };

    let spec = SweepSpec {
        benchmarks: vec!["gcc".into()],
        policies: vec!["baseline".into(), "slip-abp".into()],
        accesses,
        warmup: 0,
    };
    let options = spec
        .suite_options()
        .map_err(|e| violation(format!("spec does not resolve: {e}")))?;

    // Offline ground truth, through the exact path `slip sweep` uses.
    let mut sweep = SweepConfig::with_jobs(2);
    sweep.quiet = true;
    let offline = SuiteResults::run_with(spec.suite_options().unwrap(), &sweep)
        .map_err(|e| violation(format!("offline sweep failed: {e}")))?;

    // The server side: fresh journal dir, two workers, one submission.
    let dir = journal_dir.join(format!("serve-determinism-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = ServerConfig::new(&dir);
    config.jobs = 2;
    config.quiet = true;
    let server = Server::bind(config).map_err(|e| violation(format!("bind: {e}")))?;
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    let streamed = (|| -> Result<Vec<(String, String)>, String> {
        let mut stream = client::submit(addr, &spec).map_err(|e| e.to_string())?;
        let cells = stream.collect_cells().map_err(|e| e.to_string())?;
        Ok(cells
            .into_iter()
            .map(|(_, key, payload)| (key, payload.to_json()))
            .collect())
    })();
    let _ = client::shutdown(addr);
    let _ = handle.join();
    let _ = std::fs::remove_dir_all(&dir);
    let streamed = streamed.map_err(|e| violation(format!("serve round trip failed: {e}")))?;

    let mut expected = Vec::new();
    for &bench in &options.benchmarks {
        for &policy in &options.policies {
            expected.push((
                options.cell_key(bench, policy),
                codec::encode_result(offline.get(bench, policy)).to_json(),
            ));
        }
    }
    if streamed.len() != expected.len() {
        return Err(violation(format!(
            "server streamed {} cells, offline sweep has {}",
            streamed.len(),
            expected.len()
        )));
    }
    for ((got_key, got), (want_key, want)) in streamed.iter().zip(&expected) {
        if got_key != want_key {
            return Err(violation(format!(
                "cell order differs: server sent {got_key:?}, offline has {want_key:?}"
            )));
        }
        if got != want {
            return Err(violation(format!(
                "cell {want_key} differs:\n    serve:   {got}\n    offline: {want}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_matches_offline_at_small_budget() {
        check_serve_determinism(1_500, &std::env::temp_dir()).unwrap();
    }
}
