//! Server-determinism check: a cell executed by the `slip serve`
//! daemon must be bit-identical to the same cell executed by a plain
//! offline `slip sweep`.
//!
//! The serve path differs from the offline path in every way that
//! could plausibly leak into results — a shared worker pool, the
//! server-wide trace LRU, journal persistence, JSON round trips over
//! TCP — so this check boots a real loopback server, streams a small
//! sweep through it, and compares the payloads byte for byte against
//! [`SuiteResults::run_with`]. The sweep runs twice, once with the
//! server in its default per-cell mode and once with
//! [`TraceMode::Fused`], so the fused group scheduler (one worker
//! retiring every policy cell of a benchmark at once) is held to the
//! same bar. The fused pass also requires the server to *archive* the
//! completed run — release its in-memory cell results once the journal
//! holds them — which the stats endpoint reports.

use crate::invariants::Violation;
use sim_engine::codec;
use sim_engine::experiments::suite::SweepConfig;
use sim_engine::experiments::SuiteResults;
use sim_engine::pipeline::TraceMode;
use slip_serve::{client, Server, ServerConfig, SweepSpec};
use std::path::Path;

/// One serve-vs-offline pass: boots a loopback server in `mode`,
/// streams `benchmarks × policies` through it, and compares every cell
/// byte for byte against the offline sweep. When `expect_archived`,
/// additionally requires the server's stats to report the run archived
/// (results dropped from memory, journal authoritative) after delivery.
fn check_mode(
    accesses: u64,
    journal_dir: &Path,
    mode: TraceMode,
    policies: &[&str],
    expect_archived: bool,
) -> Result<(), Violation> {
    let violation = |detail: String| Violation {
        invariant: "serve-determinism",
        scenario: format!(
            "gcc x {policies:?} @ {accesses} accesses via loopback serve ({})",
            mode.label()
        ),
        step: None,
        detail,
    };

    let spec = SweepSpec {
        benchmarks: vec!["gcc".into()],
        policies: policies.iter().map(|&p| p.to_owned()).collect(),
        accesses,
        warmup: 0,
        topology: None,
    };
    let options = spec
        .suite_options()
        .map_err(|e| violation(format!("spec does not resolve: {e}")))?;

    // Offline ground truth, through the exact path `slip sweep` uses.
    // Always per-cell shared mode: the fused server must match the
    // *unfused* reference, not merely itself.
    let mut sweep = SweepConfig::with_jobs(2);
    sweep.quiet = true;
    let offline = SuiteResults::run_with(spec.suite_options().unwrap(), &sweep)
        .map_err(|e| violation(format!("offline sweep failed: {e}")))?;

    // The server side: fresh journal dir, two workers, one submission.
    let dir = journal_dir.join(format!(
        "serve-determinism-{}-{}",
        mode.label(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = ServerConfig::new(&dir);
    config.jobs = 2;
    config.quiet = true;
    config.trace_mode = mode;
    let server = Server::bind(config).map_err(|e| violation(format!("bind: {e}")))?;
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    let streamed = (|| -> Result<Vec<(String, String)>, String> {
        let mut stream = client::submit(addr, &spec).map_err(|e| e.to_string())?;
        let cells = stream.collect_cells().map_err(|e| e.to_string())?;
        Ok(cells
            .into_iter()
            .map(|(_, key, payload)| (key, payload.to_json()))
            .collect())
    })();
    // Archival runs on the worker thread right after the final cell is
    // published, so give it a few polls before calling it missing.
    let archived = expect_archived.then(|| {
        for _ in 0..50 {
            if let Ok(stats) = client::stats(addr) {
                if stats
                    .get("runs_archived_index")
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0)
                    >= 1
                {
                    return true;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        false
    });
    let _ = client::shutdown(addr);
    let _ = handle.join();
    let _ = std::fs::remove_dir_all(&dir);
    let streamed = streamed.map_err(|e| violation(format!("serve round trip failed: {e}")))?;

    let mut expected = Vec::new();
    for &bench in &options.benchmarks {
        for &policy in &options.policies {
            expected.push((
                options.cell_key(bench, policy),
                codec::encode_result(offline.get(bench, policy)).to_json(),
            ));
        }
    }
    if streamed.len() != expected.len() {
        return Err(violation(format!(
            "server streamed {} cells, offline sweep has {}",
            streamed.len(),
            expected.len()
        )));
    }
    for ((got_key, got), (want_key, want)) in streamed.iter().zip(&expected) {
        if got_key != want_key {
            return Err(violation(format!(
                "cell order differs: server sent {got_key:?}, offline has {want_key:?}"
            )));
        }
        if got != want {
            return Err(violation(format!(
                "cell {want_key} differs:\n    serve:   {got}\n    offline: {want}"
            )));
        }
    }
    if archived == Some(false) {
        return Err(violation(
            "completed run was never archived: cell results stay resident after the \
             journal sealed"
                .to_owned(),
        ));
    }
    Ok(())
}

/// Runs a small sweep through an in-process loopback server twice —
/// per-cell shared mode, then fused-group mode over the full policy
/// grid — and through the offline sweep path, requiring bit-identical
/// encoded results each time. `journal_dir` holds the throwaway server
/// journals.
pub fn check_serve_determinism(accesses: u64, journal_dir: &Path) -> Result<(), Violation> {
    check_mode(
        accesses,
        journal_dir,
        TraceMode::Shared,
        &["baseline", "slip-abp"],
        false,
    )?;
    check_mode(
        accesses,
        journal_dir,
        TraceMode::Fused,
        &["baseline", "slip", "slip-abp", "nurapid", "lru-pea"],
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_matches_offline_at_small_budget() {
        check_serve_determinism(1_500, &std::env::temp_dir()).unwrap();
    }
}
