//! The figure oracle: EXPERIMENTS.md's headline table as data-driven
//! assertions.
//!
//! The paper's reproducible claims are *signs and orderings* — SLIP+ABP
//! saves more than SLIP, both save where NuRAPID and LRU-PEA lose,
//! metadata traffic stays under 1.5% of demand traffic — plus tolerance
//! bands around the measured headline numbers. Each claim is one
//! [`OracleRow`] with an inclusive `[lo, hi]` band; the bands are
//! calibrated for 1M-access runs (the shape is stable from ~1M, the
//! headline table itself is recorded at 4M) and widen enough to absorb
//! run-length sensitivity without admitting a sign flip or an ordering
//! inversion.

use energy_model::{EnergyCategory, HierarchySpec};
use sim_engine::config::PolicyKind;
use sim_engine::experiments::suite::{SuiteOptions, SuiteResults, SweepConfig};
use sim_engine::multicore::run_mix;
use sim_engine::SystemConfig;

/// One checked claim.
#[derive(Debug, Clone)]
pub struct OracleRow {
    /// What the claim asserts, e.g. `mean L2 saving, SLIP+ABP`.
    pub label: String,
    /// The measured value.
    pub value: f64,
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl OracleRow {
    /// Whether the measured value sits inside the band.
    pub fn pass(&self) -> bool {
        self.value.is_finite() && self.value >= self.lo && self.value <= self.hi
    }
}

impl core::fmt::Display for OracleRow {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} {:<44} {:>9.4}  in [{:>8.4}, {:>8.4}]",
            if self.pass() { "ok  " } else { "FAIL" },
            self.label,
            self.value,
            self.lo,
            self.hi
        )
    }
}

/// The full oracle verdict.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Accesses per benchmark the oracle ran at.
    pub accesses: u64,
    /// Every checked claim.
    pub rows: Vec<OracleRow>,
}

impl OracleReport {
    /// Rows whose value fell outside their band.
    pub fn failures(&self) -> Vec<&OracleRow> {
        self.rows.iter().filter(|r| !r.pass()).collect()
    }

    /// Whether every claim held.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| r.pass())
    }
}

impl core::fmt::Display for OracleReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "figure oracle at {} accesses/benchmark: {}/{} claims hold",
            self.accesses,
            self.rows.len() - self.failures().len(),
            self.rows.len()
        )?;
        for row in &self.rows {
            writeln!(f, "  {row}")?;
        }
        Ok(())
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    v.iter().sum::<f64>() / v.len() as f64
}

/// Mean speedup of `policy` over the per-benchmark baselines.
fn mean_speedup(suite: &SuiteResults, policy: PolicyKind) -> f64 {
    mean(
        suite
            .benchmarks()
            .iter()
            .map(|b| suite.get(b, policy).speedup_vs(suite.baseline(b))),
    )
}

/// Mean relative DRAM traffic change of `policy` (total traffic,
/// metadata included, vs the baseline's demand traffic).
fn mean_dram_change(suite: &SuiteResults, policy: PolicyKind) -> f64 {
    mean(suite.benchmarks().iter().map(|b| {
        suite.get(b, policy).dram_total_traffic() as f64
            / suite.baseline(b).dram_demand_traffic() as f64
            - 1.0
    }))
}

/// Mean metadata share of DRAM traffic under `policy`.
fn mean_metadata_overhead(suite: &SuiteResults, policy: PolicyKind) -> f64 {
    mean(suite.benchmarks().iter().map(|b| {
        let r = suite.get(b, policy);
        (r.dram_total_traffic() - r.dram_demand_traffic()) as f64
            / suite.baseline(b).dram_demand_traffic() as f64
    }))
}

/// Runs the headline experiment grid at `accesses` per benchmark and
/// checks every claim. `sweep` controls parallelism; results are
/// identical at any worker count.
pub fn run_oracle(accesses: u64, sweep: &SweepConfig) -> std::io::Result<OracleReport> {
    let options = SuiteOptions::paper_full()
        .with_accesses(accesses)
        .with_warmup(accesses / 10);
    let suite = SuiteResults::run_with(options, sweep)?;

    let l2 = |p| suite.mean_l2_saving(p);
    let l3 = |p| suite.mean_l3_saving(p);
    let speedup = |p| mean_speedup(&suite, p);
    let row = |label: &str, value: f64, lo: f64, hi: f64| OracleRow {
        label: label.to_string(),
        value,
        lo,
        hi,
    };

    let mut rows = vec![
        // Headline savings bands (EXPERIMENTS.md: L2 10.6% / 43.0%,
        // L3 11.5% / 41.1% at 4M; 1M runs land within these bands).
        row("mean L2 saving, SLIP", l2(PolicyKind::Slip), 0.02, 0.30),
        row(
            "mean L2 saving, SLIP+ABP",
            l2(PolicyKind::SlipAbp),
            0.25,
            0.60,
        ),
        row("mean L3 saving, SLIP", l3(PolicyKind::Slip), 0.02, 0.30),
        row(
            "mean L3 saving, SLIP+ABP",
            l3(PolicyKind::SlipAbp),
            0.25,
            0.60,
        ),
        // The baselines *lose* energy in this wire-dominated model
        // (NuRAPID ~-119%/-108%, LRU-PEA ~-13%/-15%): signs must hold.
        row(
            "mean L2 saving, NuRAPID (negative)",
            l2(PolicyKind::NuRapid),
            -3.0,
            -0.30,
        ),
        row(
            "mean L3 saving, NuRAPID (negative)",
            l3(PolicyKind::NuRapid),
            -3.0,
            -0.30,
        ),
        row(
            "mean L2 saving, LRU-PEA (negative)",
            l2(PolicyKind::LruPea),
            -0.60,
            -0.01,
        ),
        row(
            "mean L3 saving, LRU-PEA (negative)",
            l3(PolicyKind::LruPea),
            -0.60,
            -0.01,
        ),
        // Orderings, encoded as non-negative differences.
        row(
            "ordering: ABP adds L2 saving over SLIP",
            l2(PolicyKind::SlipAbp) - l2(PolicyKind::Slip),
            0.0,
            1.0,
        ),
        row(
            "ordering: ABP adds L3 saving over SLIP",
            l3(PolicyKind::SlipAbp) - l3(PolicyKind::Slip),
            0.0,
            1.0,
        ),
        // Speedup ordering NuRAPID < LRU-PEA < SLIP < SLIP+ABP
        // (measured -7.2% / -3.8% / +2.0% / +4.7% at 4M).
        row(
            "ordering: speedup LRU-PEA over NuRAPID",
            speedup(PolicyKind::LruPea) - speedup(PolicyKind::NuRapid),
            0.0,
            1.0,
        ),
        row(
            "ordering: speedup SLIP over LRU-PEA",
            speedup(PolicyKind::Slip) - speedup(PolicyKind::LruPea),
            0.0,
            1.0,
        ),
        // ABP's edge over plain SLIP and its net speedup only fully
        // develop with trace length (+4.7% at 4M, -0.5% at the oracle's
        // 1M default): the bands tolerate the short-run shortfall while
        // still catching a real regression.
        row(
            "ordering: speedup SLIP+ABP over SLIP",
            speedup(PolicyKind::SlipAbp) - speedup(PolicyKind::Slip),
            -0.03,
            1.0,
        ),
        row(
            "mean speedup, SLIP+ABP",
            speedup(PolicyKind::SlipAbp),
            0.96,
            1.20,
        ),
        row(
            "mean speedup, NuRAPID (slowdown)",
            speedup(PolicyKind::NuRapid),
            0.70,
            1.0,
        ),
        // SLIP+ABP reduces DRAM traffic on net at paper length (-3.7%
        // at 4M; +2.7% at 1M, where warmup is a larger share), and
        // metadata stays under the paper's 1.5%.
        row(
            "mean DRAM traffic change, SLIP+ABP",
            mean_dram_change(&suite, PolicyKind::SlipAbp),
            -0.20,
            0.06,
        ),
        row(
            "mean metadata DRAM overhead, SLIP+ABP",
            mean_metadata_overhead(&suite, PolicyKind::SlipAbp),
            0.0,
            0.015,
        ),
    ];

    // Two-core shared-L3 spot check (Figure 16 headline: 49.6% L3
    // saving, -4.1% DRAM at 4M/core over the 8 mixes; the oracle runs
    // two mixes to stay inside the --oracle time budget).
    let mixes = &workloads::MULTICORE_MIXES[..2];
    let mut l3_savings = Vec::new();
    let mut dram_changes = Vec::new();
    for &(a, b) in mixes {
        let spec_a = workloads::workload(a).expect("known benchmark");
        let spec_b = workloads::workload(b).expect("known benchmark");
        let per_core = accesses / 2;
        let base = run_mix(
            SystemConfig::paper_45nm(PolicyKind::Baseline),
            &spec_a,
            &spec_b,
            per_core,
        );
        let slip = run_mix(
            SystemConfig::paper_45nm(PolicyKind::SlipAbp),
            &spec_a,
            &spec_b,
            per_core,
        );
        l3_savings.push(1.0 - slip.l3_energy / base.l3_energy);
        dram_changes.push(slip.dram_total_traffic as f64 / base.dram_demand_traffic as f64 - 1.0);
    }
    rows.push(row(
        "multicore shared-L3 saving, SLIP+ABP",
        mean(l3_savings.into_iter()),
        0.25,
        0.65,
    ));
    rows.push(row(
        "multicore DRAM traffic change, SLIP+ABP",
        mean(dram_changes.into_iter()),
        -0.20,
        0.02,
    ));

    // §6 node study at 22 nm, through the topology path: the node is a
    // parsed hierarchy spec, not a compiled-in constant, so the oracle
    // also pins the spec pipeline end to end. The paper's §6 claim is
    // that SLIP's savings *persist* at smaller nodes (22 nm: 36% L2 /
    // 25% L3). In this model wire and bank energy shrink together, so
    // the fractional saving at 22 nm tracks 45 nm to within half a
    // point (measured −0.004 L2 / −0.002 L3 at 1M) — the gap rows pin
    // that carry-over, not a growth that the model does not exhibit.
    let node_suite = |name: &str| -> std::io::Result<SuiteResults> {
        let options = SuiteOptions::paper_full()
            .with_accesses(accesses)
            .with_warmup(accesses / 10)
            .with_policies(&[PolicyKind::SlipAbp])
            .with_topology(HierarchySpec::builtin(name).expect("built-in node"));
        SuiteResults::run_with(options, sweep)
    };
    let suite22 = node_suite("22nm")?;
    rows.push(row(
        "mean L2 saving at 22nm, SLIP+ABP",
        suite22.mean_l2_saving(PolicyKind::SlipAbp),
        0.22,
        0.55,
    ));
    rows.push(row(
        "mean L3 saving at 22nm, SLIP+ABP",
        suite22.mean_l3_saving(PolicyKind::SlipAbp),
        0.18,
        0.52,
    ));
    rows.push(row(
        "22nm L2 saving gap vs 45nm",
        suite22.mean_l2_saving(PolicyKind::SlipAbp) - l2(PolicyKind::SlipAbp),
        -0.06,
        0.10,
    ));
    rows.push(row(
        "22nm L3 saving gap vs 45nm",
        suite22.mean_l3_saving(PolicyKind::SlipAbp) - l3(PolicyKind::SlipAbp),
        -0.06,
        0.10,
    ));

    // STT-RAM LLC node: reads cost ~0.6x SRAM but writes cost 6x their
    // read, so the baseline's L3 energy is *insertion*-dominated —
    // every miss fill pays the expensive write — and ABP's insertion
    // bypass saves more at L3 than the SRAM node's. Both claims are
    // orderings, robust to run length.
    let stt = node_suite("stt-llc")?;
    let stt_insertion_share = mean(stt.benchmarks().iter().map(|b| {
        let acct = &stt.baseline(b).l3_energy;
        let insertion = acct.get(EnergyCategory::Insertion).as_pj();
        let access = acct.get(EnergyCategory::Access).as_pj();
        insertion / (insertion + access)
    }));
    rows.push(row(
        "stt-llc: baseline L3 insertion share of read+insert",
        stt_insertion_share,
        0.65,
        0.97,
    ));
    rows.push(row(
        "ordering: stt-llc L3 saving over 45nm, SLIP+ABP",
        stt.mean_l3_saving(PolicyKind::SlipAbp) - l3(PolicyKind::SlipAbp),
        0.0,
        0.3,
    ));

    Ok(OracleReport { accesses, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_band_logic() {
        let mk = |value, lo, hi| OracleRow {
            label: "t".into(),
            value,
            lo,
            hi,
        };
        assert!(mk(0.4, 0.25, 0.6).pass());
        assert!(mk(0.25, 0.25, 0.6).pass(), "bounds are inclusive");
        assert!(!mk(0.7, 0.25, 0.6).pass());
        assert!(!mk(f64::NAN, 0.25, 0.6).pass(), "NaN never passes");
        let report = OracleReport {
            accesses: 1,
            rows: vec![mk(0.4, 0.25, 0.6), mk(0.7, 0.25, 0.6)],
        };
        assert_eq!(report.failures().len(), 1);
        assert!(!report.passed());
        assert!(report.to_string().contains("1/2 claims hold"));
    }
}
