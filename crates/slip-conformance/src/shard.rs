//! Shard-determinism check: a set-sharded run must be bit-identical to
//! the serial run of the same configuration over the same trace.
//!
//! This is the conformance-side guarantee backing `--shards`: sharding
//! is purely an execution strategy, never a modeling change. The check
//! replays adversarial trace families (the same generator the
//! differential fuzzer uses, so conflict storms, tag aliases, address
//! edges and TLB thrash are all represented) through the serial buffer
//! runner and through [`run_buffer_sharded`] at 2 and 4 shards, and
//! compares the encoded results byte for byte. Non-shardable
//! configurations (SLIP's global MMU) are included too: they must fall
//! back to the serial path transparently, not diverge *or* panic.

use crate::adversarial::{self, Pattern};
use crate::invariants::Violation;
use sim_engine::config::{PolicyKind, SystemConfig};
use sim_engine::{codec, run_buffer_sharded, run_workload_from_buffer};
use workloads::TraceBuffer;

/// Where two JSON payloads first differ, with a little context — enough
/// to name the diverging field without dumping two full results.
fn first_difference(a: &str, b: &str) -> String {
    let at = a
        .bytes()
        .zip(b.bytes())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.len().min(b.len()));
    let start = at.saturating_sub(40);
    let excerpt = |s: &str| -> String {
        s.get(start..(at + 40).min(s.len()))
            .unwrap_or("<non-utf8 boundary>")
            .to_owned()
    };
    format!(
        "first divergence at byte {at}:\n    serial:  …{}…\n    sharded: …{}…",
        excerpt(a),
        excerpt(b)
    )
}

/// Replays one adversarial trace per (pattern, policy) case serially
/// and at 2 and 4 shards, requiring bit-identical encoded results.
/// A slice of the trace is treated as warmup so the sharded global
/// warmup-boundary reset is exercised as well.
pub fn check_shard_determinism(seed: u64, trace_len: u64, quiet: bool) -> Result<(), Violation> {
    // Every shardable policy appears, plus DRRIP/SHiP replacement and
    // the SLIP policies, which must take the transparent serial
    // fallback rather than shard.
    let cases: [(Pattern, PolicyKind, Option<sim_engine::ReplacementKind>); 7] = [
        (Pattern::ConflictStorm, PolicyKind::Baseline, None),
        (Pattern::TagAlias, PolicyKind::NuRapid, None),
        (Pattern::PhaseChange, PolicyKind::LruPea, None),
        (Pattern::MaxAddressEdge, PolicyKind::Baseline, None),
        (Pattern::SingleLineLoop, PolicyKind::LruPea, None),
        (
            Pattern::RandomMix,
            PolicyKind::Baseline,
            Some(sim_engine::ReplacementKind::Drrip),
        ),
        (Pattern::TlbThrash, PolicyKind::SlipAbp, None),
    ];
    for (i, (pattern, policy, replacement)) in cases.into_iter().enumerate() {
        let scenario = format!("{pattern}/{policy:?}");
        if !quiet {
            eprintln!("  shard-determinism: {scenario}");
        }
        let trace = adversarial::generate(pattern, seed ^ ((i as u64) << 8), trace_len);
        let buffer = TraceBuffer::materialize(trace.iter().copied());
        let mut config = SystemConfig::paper_45nm(policy);
        if let Some(r) = replacement {
            config.replacement = r;
        }
        let warmup = trace_len / 8;
        let serial = run_workload_from_buffer(config.clone(), &scenario, &buffer, warmup);
        let want = codec::encode_result(&serial).to_json();
        for shards in [2usize, 4] {
            let sharded = run_buffer_sharded(config.clone(), &scenario, &buffer, warmup, shards);
            let got = codec::encode_result(&sharded).to_json();
            if got != want {
                return Err(Violation {
                    invariant: "shard-determinism",
                    scenario,
                    step: None,
                    detail: format!(
                        "{shards}-shard run is not bit-identical to serial \
                         (seed {seed:#x}, {trace_len} accesses, warmup {warmup});\n  {}",
                        first_difference(&want, &got)
                    ),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_runs_match_serial_over_adversarial_families() {
        if let Err(v) = check_shard_determinism(0x511b, 4_000, true) {
            panic!("{v}");
        }
    }

    #[test]
    fn first_difference_pinpoints_the_field() {
        let a = r#"{"accesses":100,"cycles":900}"#;
        let b = r#"{"accesses":100,"cycles":901}"#;
        let d = first_difference(a, b);
        assert!(d.contains("cycles"), "{d}");
    }
}
