//! Fast-path determinism check: the batched L1-resident fast path
//! (SoA set layout, hit-run scanner, way memo, TLB-residency gate)
//! must be bit-identical to the verbatim reference path.
//!
//! This is the conformance-side guarantee backing the default
//! execution path: `reference_hot_path = false` is purely an execution
//! strategy, never a modeling change. The check replays adversarial
//! trace families — the repeat-heavy ones that exercise the way memo
//! and hit-run batching hardest, plus tag aliases, address edges, and
//! TLB thrash that stress its invalidation and residency gating —
//! through three executions per case:
//!
//! 1. the reference path (`reference_hot_path = true`),
//! 2. the optimized buffer replay (`run_chunks` + hit-run scanner),
//! 3. the optimized per-access inline loop (`step_fast` directly),
//!
//! and compares all encoded results byte for byte.

use crate::adversarial::{self, Pattern};
use crate::invariants::Violation;
use sim_engine::config::{PolicyKind, SystemConfig};
use sim_engine::system::SingleCoreSystem;
use sim_engine::{codec, run_workload_from_buffer};
use workloads::TraceBuffer;

/// Where two JSON payloads first differ, with a little context — enough
/// to name the diverging field without dumping two full results.
fn first_difference(a: &str, b: &str) -> String {
    let at = a
        .bytes()
        .zip(b.bytes())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.len().min(b.len()));
    let start = at.saturating_sub(40);
    let excerpt = |s: &str| -> String {
        s.get(start..(at + 40).min(s.len()))
            .unwrap_or("<non-utf8 boundary>")
            .to_owned()
    };
    format!(
        "first divergence at byte {at}:\n    reference: …{}…\n    fast path: …{}…",
        excerpt(a),
        excerpt(b)
    )
}

/// Inline per-access replay through the hit-run scanner: the warmup
/// boundary and finish sequence of `run_workload_from_buffer`, but
/// stepping `step_fast` on unpacked accesses instead of whole chunks.
fn run_inline_fast(
    config: SystemConfig,
    name: &str,
    buffer: &TraceBuffer,
    warmup: u64,
) -> sim_engine::SimResult {
    let mut system = SingleCoreSystem::new(config);
    let mut index = 0u64;
    for chunk in buffer.chunks() {
        for &word in chunk {
            if index == warmup {
                system.reset_measurements();
            }
            index += 1;
            system.step_fast(workloads::unpack_access(word));
        }
    }
    assert!(index >= warmup, "trace long enough for warmup");
    system.finish(name.to_owned())
}

/// Replays one adversarial trace per (pattern, policy) case through the
/// reference path and two fast-path executions, requiring bit-identical
/// encoded results. A slice of the trace is treated as warmup so
/// flushing the pending hit run at the measurement boundary is
/// exercised as well.
pub fn check_fastpath_determinism(seed: u64, trace_len: u64, quiet: bool) -> Result<(), Violation> {
    let cases: [(Pattern, PolicyKind, Option<sim_engine::ReplacementKind>); 7] = [
        (Pattern::SingleLineLoop, PolicyKind::Baseline, None),
        (Pattern::ConflictStorm, PolicyKind::Baseline, None),
        (Pattern::TagAlias, PolicyKind::NuRapid, None),
        (Pattern::PhaseChange, PolicyKind::LruPea, None),
        (Pattern::MaxAddressEdge, PolicyKind::Baseline, None),
        (
            Pattern::RandomMix,
            PolicyKind::Baseline,
            Some(sim_engine::ReplacementKind::Drrip),
        ),
        (Pattern::TlbThrash, PolicyKind::SlipAbp, None),
    ];
    for (i, (pattern, policy, replacement)) in cases.into_iter().enumerate() {
        let scenario = format!("{pattern}/{policy:?}");
        if !quiet {
            eprintln!("  fastpath-determinism: {scenario}");
        }
        let trace = adversarial::generate(pattern, seed ^ ((i as u64) << 8), trace_len);
        let buffer = TraceBuffer::materialize(trace.iter().copied());
        let mut config = SystemConfig::paper_45nm(policy);
        if let Some(r) = replacement {
            config.replacement = r;
        }
        let warmup = trace_len / 8;

        let mut reference = config.clone();
        reference.reference_hot_path = true;
        let want = codec::encode_result(&run_workload_from_buffer(
            reference, &scenario, &buffer, warmup,
        ))
        .to_json();

        debug_assert!(!config.reference_hot_path);
        for (mode, result) in [
            (
                "buffer replay",
                run_workload_from_buffer(config.clone(), &scenario, &buffer, warmup),
            ),
            (
                "inline step_fast",
                run_inline_fast(config.clone(), &scenario, &buffer, warmup),
            ),
        ] {
            let got = codec::encode_result(&result).to_json();
            if got != want {
                return Err(Violation {
                    invariant: "fastpath-determinism",
                    scenario,
                    step: None,
                    detail: format!(
                        "optimized {mode} is not bit-identical to the reference path \
                         (seed {seed:#x}, {trace_len} accesses, warmup {warmup});\n  {}",
                        first_difference(&want, &got)
                    ),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_path_matches_reference_over_adversarial_families() {
        if let Err(v) = check_fastpath_determinism(0x511b, 4_000, true) {
            panic!("{v}");
        }
    }
}
