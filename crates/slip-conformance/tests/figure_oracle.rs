//! Tier-2 figure-oracle regression gate: replays a reduced paper suite
//! and asserts the EXPERIMENTS.md headline claims as data-driven bands.
//! Besides the 45 nm figures this covers the §6 technology-node study
//! through the declarative topology path: the `22nm` node (savings
//! persist, within half a point of 45 nm) and the `stt-llc` node
//! (baseline L3 energy is insertion-dominated and SLIP+ABP saves more
//! there than on the SRAM LLC) — bands calibrated at 1M accesses.
//!
//! Ignored by default — it simulates tens of millions of accesses.
//! Run it explicitly (nightly-equivalent) with:
//!
//! ```text
//! cargo test -p slip-conformance --release -- --ignored figure_oracle
//! ```
//!
//! or via the CLI: `slip check --oracle` (same bands, same code path).

use sim_engine::SweepConfig;
use slip_conformance::run_oracle;

#[test]
#[ignore = "tier-2: simulates the full suite; run with --ignored or `slip check --oracle`"]
fn figure_oracle_headline_claims_hold() {
    let report = run_oracle(1_000_000, &SweepConfig::with_jobs(sim_engine::env::jobs()))
        .expect("oracle suite runs");
    let failures: Vec<String> = report
        .failures()
        .into_iter()
        .map(|row| row.to_string())
        .collect();
    assert!(
        failures.is_empty(),
        "figure oracle regressions:\n{}",
        failures.join("\n")
    );
}

/// The quick conformance sweep (fuzz + invariants) must be clean at a
/// fixed seed — a cheap tier-2 smoke mirror of `slip check --quick`.
#[test]
#[ignore = "tier-2: ~30s of differential fuzzing; run with --ignored or `slip check --quick`"]
fn quick_conformance_sweep_is_clean() {
    let mut opts = slip_conformance::FuzzOptions::quick(0x511b);
    opts.quiet = true;
    let divergences = slip_conformance::run_fuzz(&opts);
    assert!(divergences.is_empty(), "divergences: {divergences:?}");
    let violations = slip_conformance::run_invariant_sweep(0x511b, 5_000, true);
    assert!(violations.is_empty(), "violations: {violations:?}");
}
