//! `sweep-runner` — a dependency-free parallel experiment-execution
//! engine for simulation sweeps.
//!
//! The crate knows nothing about caches or energy: a sweep is a list of
//! *cells*, each identified by a caller-chosen key string and executed
//! by a caller-supplied closure. The engine contributes:
//!
//! * [`pool`] — a `std::thread::scope` worker pool that drains cells
//!   dynamically but returns results in cell order, so parallel runs
//!   are bit-identical to serial ones (each cell must be seeded
//!   independently of execution order — the simulator already is).
//! * [`journal`] — a JSONL run journal recording per-cell wall time, an
//!   observability metrics object, and a full result payload.
//! * Checkpoint/resume — cells whose key is already in the journal are
//!   decoded from their payload instead of re-run.
//! * [`progress`] — live per-cell progress lines on stderr.
//!
//! # Example
//!
//! ```
//! use sweep_runner::{json::Value, run_sweep, SweepOptions};
//!
//! let keys: Vec<String> = (0..8).map(|i| format!("cell-{i}")).collect();
//! let opts = SweepOptions { jobs: 4, journal: None, quiet: true, label: "demo".into(), cancel: None };
//! let squares = run_sweep(
//!     &keys,
//!     &opts,
//!     |i| (i as u64) * (i as u64),                 // run one cell
//!     |&v, _wall| (Value::object(), Value::u64(v)), // (metrics, payload)
//!     |p| p.as_u64(),                              // payload -> value
//! ).unwrap();
//! assert_eq!(squares[3], 9);
//! ```

pub mod interrupt;
pub mod journal;
pub mod json;
pub mod pool;
pub mod progress;

pub use journal::Journal;
pub use pool::{
    available_jobs, run_indexed, run_indexed_cancellable, PoolBusy, QueueHandle, SharedPool,
};

use json::Value;
use progress::Progress;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How a sweep should execute.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker count; 1 means fully serial on the calling thread.
    pub jobs: usize,
    /// Journal path for checkpoint/resume; `None` disables journaling.
    pub journal: Option<PathBuf>,
    /// Suppress the stderr progress lines.
    pub quiet: bool,
    /// Short sweep name shown in progress lines.
    pub label: String,
    /// Cooperative cancellation flag (usually
    /// [`interrupt::install`]'s SIGINT flag): once it reads true the
    /// pool stops dispatching cells, in-flight cells finish and are
    /// journaled, and [`run_sweep`] returns
    /// [`std::io::ErrorKind::Interrupted`].
    pub cancel: Option<&'static AtomicBool>,
}

impl SweepOptions {
    /// Serial, journal-less, quiet — the drop-in replacement for a
    /// plain `for` loop.
    pub fn serial() -> SweepOptions {
        SweepOptions {
            jobs: 1,
            journal: None,
            quiet: true,
            label: "sweep".to_owned(),
            cancel: None,
        }
    }

    /// `jobs` workers, no journal, progress on.
    pub fn with_jobs(jobs: usize) -> SweepOptions {
        SweepOptions {
            jobs,
            journal: None,
            quiet: false,
            label: "sweep".to_owned(),
            cancel: None,
        }
    }

    /// Attaches a cancellation flag.
    pub fn with_cancel(mut self, cancel: &'static AtomicBool) -> SweepOptions {
        self.cancel = Some(cancel);
        self
    }
}

impl Default for SweepOptions {
    /// All available cores, no journal, progress on.
    fn default() -> SweepOptions {
        SweepOptions::with_jobs(available_jobs())
    }
}

/// Runs one job per key and returns the results in key order.
///
/// * `run(i)` executes cell `i` (the index into `keys`).
/// * `encode(&T, wall)` produces the journal record: `metrics` is a
///   small observability object (see [`progress`] for the well-known
///   keys; `wall` is provided so rates like accesses/sec can be
///   derived), `payload` must contain everything `decode` needs.
/// * `decode(&Value) -> Option<T>` rebuilds a result from a journal
///   payload; returning `None` (schema drift, corrupt line) causes the
///   cell to be re-run.
///
/// Cells whose key is present in the journal are restored, not re-run;
/// `keys` must therefore encode every input the result depends on.
///
/// # Errors
///
/// Journal I/O errors propagate. When the sweep's cancellation flag
/// trips (`opts.cancel`, typically SIGINT) before every cell has run,
/// the completed cells are already journaled — their records flush
/// line-atomically, so the journal tail stays sealed — and the sweep
/// returns [`std::io::ErrorKind::Interrupted`]; re-running with the
/// same journal resumes from the completed set. Panics from `run`
/// propagate after the worker scope joins.
pub fn run_sweep<T, Run, Enc, Dec>(
    keys: &[String],
    opts: &SweepOptions,
    run: Run,
    encode: Enc,
    decode: Dec,
) -> std::io::Result<Vec<T>>
where
    T: Send,
    Run: Fn(usize) -> T + Sync,
    Enc: Fn(&T, Duration) -> (Value, Value) + Sync,
    Dec: Fn(&Value) -> Option<T>,
{
    // A plain sweep is the grouped engine with singleton groups.
    run_sweep_grouped(
        keys,
        opts,
        |pending| pending.iter().map(|&i| vec![i]).collect(),
        |members| vec![run(members[0])],
        encode,
        decode,
    )
}

/// The grouped variant of [`run_sweep`]: pending cells are partitioned
/// into *groups*, each executed by one pool worker in a single `run`
/// call that returns one result per member (a fused simulation group
/// occupies one worker but retires N cells at once).
///
/// * `group(&pending)` partitions the pending cell indices (cells the
///   journal did not restore — resume therefore re-forms groups from
///   the surviving cells only). Every pending index must appear in
///   exactly one group; groups must be non-empty.
/// * `run(&members)` executes one group and returns its results in
///   member order.
///
/// Each member is journaled individually (with the group's wall time
/// split evenly across members) the moment its group completes, so an
/// interrupted grouped sweep still seals a clean per-cell resumable
/// journal. Results come back in key order, exactly as [`run_sweep`].
///
/// # Errors
///
/// As [`run_sweep`]: journal I/O errors propagate, and a tripped
/// cancellation flag yields [`std::io::ErrorKind::Interrupted`] after
/// in-flight groups finish and journal.
///
/// # Panics
///
/// Panics when `group` does not produce a partition of the pending
/// indices, or when `run` returns a result count different from its
/// group size — both are caller bugs that would corrupt cell/key
/// alignment.
pub fn run_sweep_grouped<T, Grp, Run, Enc, Dec>(
    keys: &[String],
    opts: &SweepOptions,
    group: Grp,
    run: Run,
    encode: Enc,
    decode: Dec,
) -> std::io::Result<Vec<T>>
where
    T: Send,
    Grp: FnOnce(&[usize]) -> Vec<Vec<usize>>,
    Run: Fn(&[usize]) -> Vec<T> + Sync,
    Enc: Fn(&T, Duration) -> (Value, Value) + Sync,
    Dec: Fn(&Value) -> Option<T>,
{
    let journal = match &opts.journal {
        Some(path) => Some(Journal::open(path)?),
        None => None,
    };
    if let Some(j) = &journal {
        if j.skipped() > 0 && !opts.quiet {
            eprintln!(
                "{}: warning: skipped {} corrupt/truncated journal line(s) in {} \
                 (their cells will re-run)",
                opts.label,
                j.skipped(),
                j.path().display()
            );
        }
    }

    // Restore completed cells; collect the rest as pending indices.
    let mut resolved: Vec<Option<T>> = keys.iter().map(|_| None).collect();
    let mut pending: Vec<usize> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        let restored = journal
            .as_ref()
            .and_then(|j| j.payload(key))
            .and_then(&decode);
        match restored {
            Some(v) => resolved[i] = Some(v),
            None => pending.push(i),
        }
    }
    let from_journal = keys.len() - pending.len();

    let groups = group(&pending);
    {
        // The grouping must be a permutation of the pending set — a
        // stray or missing index would silently misalign keys/results.
        let mut seen: Vec<usize> = groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert!(
            groups.iter().all(|g| !g.is_empty()) && seen == pending,
            "group() must partition the pending cell indices"
        );
    }

    let progress = Progress::new(&opts.label, pending.len(), opts.quiet);
    let journal_error: Mutex<Option<std::io::Error>> = Mutex::new(None);

    let ran = pool::run_indexed_cancellable(groups.len(), opts.jobs, opts.cancel, |g| {
        let members = &groups[g];
        let started = Instant::now();
        let values = run(members);
        let wall = started.elapsed();
        assert_eq!(
            values.len(),
            members.len(),
            "group run() must return one result per member"
        );
        // The group ran as one unit; attribute its wall time evenly so
        // per-cell rates stay meaningful.
        let member_wall = wall / members.len() as u32;
        for (&i, value) in members.iter().zip(&values) {
            let (metrics, payload) = encode(value, member_wall);
            if let Some(journal) = &journal {
                if let Err(e) = journal.record(
                    &keys[i],
                    member_wall.as_secs_f64() * 1e3,
                    metrics.clone(),
                    payload,
                ) {
                    journal_error
                        .lock()
                        .expect("error slot poisoned")
                        .get_or_insert(e);
                }
            }
            progress.cell_done(&keys[i], member_wall, &metrics);
        }
        values
    });
    if let Some(e) = journal_error.into_inner().expect("error slot poisoned") {
        return Err(e);
    }

    if ran.len() < groups.len() {
        // The cancellation flag tripped mid-sweep. Completed groups are
        // journaled per member (each line flushed atomically), so the
        // journal is a clean resumable prefix.
        let done: usize = ran.iter().map(|(g, _)| groups[*g].len()).sum();
        let total = pending.len();
        if !opts.quiet {
            eprintln!(
                "[{}] interrupted after {done}/{total} cells{}",
                opts.label,
                match &opts.journal {
                    Some(p) => format!("; journal {} sealed, re-run to resume", p.display()),
                    None => String::new(),
                }
            );
        }
        return Err(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            format!("sweep interrupted after {done}/{total} pending cells"),
        ));
    }

    for (g, values) in ran {
        for (&i, value) in groups[g].iter().zip(values) {
            resolved[i] = Some(value);
        }
    }
    progress.finish(from_journal);
    Ok(resolved
        .into_iter()
        .map(|v| v.expect("every cell resolved"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("cell-{i}")).collect()
    }

    fn quiet(jobs: usize) -> SweepOptions {
        SweepOptions {
            jobs,
            journal: None,
            quiet: true,
            label: "test".to_owned(),
            cancel: None,
        }
    }

    #[allow(clippy::type_complexity)]
    fn codec_u64() -> (
        impl Fn(&u64, Duration) -> (Value, Value) + Sync,
        impl Fn(&Value) -> Option<u64>,
    ) {
        (
            |&v: &u64, _: Duration| (Value::object(), Value::u64(v)),
            |p: &Value| p.as_u64(),
        )
    }

    #[test]
    fn parallel_results_match_serial() {
        let (enc, dec) = codec_u64();
        let f = |i: usize| (i as u64).wrapping_mul(0x9E3779B9) >> 7;
        let serial = run_sweep(&keys(20), &quiet(1), f, &enc, &dec).unwrap();
        let parallel = run_sweep(&keys(20), &quiet(4), f, &enc, &dec).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn resume_skips_completed_cells() {
        let mut path = std::env::temp_dir();
        path.push(format!("slip-sweep-resume-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let opts = SweepOptions {
            jobs: 2,
            journal: Some(path.clone()),
            quiet: true,
            label: "test".to_owned(),
            cancel: None,
        };
        let executions = AtomicUsize::new(0);
        let run = |i: usize| {
            executions.fetch_add(1, Ordering::Relaxed);
            i as u64 + 100
        };
        let (enc, dec) = codec_u64();

        let first = run_sweep(&keys(6), &opts, run, &enc, &dec).unwrap();
        assert_eq!(executions.load(Ordering::Relaxed), 6);

        // Same keys again: everything restores from the journal.
        let second = run_sweep(&keys(6), &opts, run, &enc, &dec).unwrap();
        assert_eq!(executions.load(Ordering::Relaxed), 6, "no cell re-ran");
        assert_eq!(first, second);

        // A grown sweep only runs the new cells.
        let third = run_sweep(&keys(8), &opts, run, &enc, &dec).unwrap();
        assert_eq!(executions.load(Ordering::Relaxed), 8);
        assert_eq!(third[..6], first[..]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn undecodable_payloads_cause_rerun() {
        let mut path = std::env::temp_dir();
        path.push(format!("slip-sweep-badpayload-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let opts = SweepOptions {
            jobs: 1,
            journal: Some(path.clone()),
            quiet: true,
            label: "test".to_owned(),
            cancel: None,
        };
        let (enc, dec) = codec_u64();
        run_sweep(&keys(2), &opts, |i| i as u64, &enc, &dec).unwrap();
        // Decoder that rejects everything: cells must re-run, not panic.
        let ran = AtomicUsize::new(0);
        let out = run_sweep(
            &keys(2),
            &opts,
            |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                i as u64
            },
            &enc,
            |_: &Value| None::<u64>,
        )
        .unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 2);
        assert_eq!(out, vec![0, 1]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_trailing_record_reruns_only_that_cell() {
        let mut path = std::env::temp_dir();
        path.push(format!("slip-sweep-truncated-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let opts = SweepOptions {
            jobs: 1,
            journal: Some(path.clone()),
            quiet: true,
            label: "test".to_owned(),
            cancel: None,
        };
        let (enc, dec) = codec_u64();
        let first = run_sweep(&keys(4), &opts, |i| i as u64 * 11, &enc, &dec).unwrap();

        // Simulate a crash mid-append: cut the file in the middle of
        // the last record, leaving a torn trailing line.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let keep = text.len() - lines[3].len() / 2 - 1;
        let truncated = &text[..keep];
        assert!(
            !truncated.ends_with('\n'),
            "truncation must land inside the final record"
        );
        std::fs::write(&path, truncated).unwrap();

        let j = Journal::open(&path).unwrap();
        assert_eq!((j.loaded(), j.skipped()), (3, 1));
        drop(j);

        // Resume: the three intact cells restore, only the torn one
        // re-runs, and results are identical to the pre-crash sweep.
        let ran = AtomicUsize::new(0);
        let second = run_sweep(
            &keys(4),
            &opts,
            |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                i as u64 * 11
            },
            &enc,
            &dec,
        )
        .unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 1, "only the torn cell re-ran");
        assert_eq!(second, first);

        // The re-run appended a fresh record after the torn bytes; the
        // journal heals on the next load.
        let j = Journal::open(&path).unwrap();
        assert_eq!((j.loaded(), j.skipped()), (4, 1));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn interrupted_sweep_seals_a_resumable_journal() {
        let mut path = std::env::temp_dir();
        path.push(format!("slip-sweep-interrupt-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // A leaked flag stands in for the process-global SIGINT flag so
        // this test cannot race other tests through shared state.
        let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let opts = SweepOptions {
            jobs: 1,
            journal: Some(path.clone()),
            quiet: true,
            label: "test".to_owned(),
            cancel: Some(flag),
        };
        let (enc, dec) = codec_u64();
        let err = run_sweep(
            &keys(6),
            &opts,
            |i| {
                if i == 2 {
                    flag.store(true, std::sync::atomic::Ordering::SeqCst);
                }
                i as u64 * 3
            },
            &enc,
            &dec,
        )
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Interrupted);

        // The journal holds exactly the completed prefix, sealed: a
        // clean reload sees no torn lines.
        let j = Journal::open(&path).unwrap();
        assert_eq!((j.loaded(), j.skipped()), (3, 0));
        drop(j);

        // Clearing the flag and re-running resumes: only the cells the
        // interrupt skipped execute.
        flag.store(false, std::sync::atomic::Ordering::SeqCst);
        let ran = AtomicUsize::new(0);
        let out = run_sweep(
            &keys(6),
            &opts,
            |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                i as u64 * 3
            },
            &enc,
            &dec,
        )
        .unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 3);
        assert_eq!(out, (0..6).map(|i| i * 3).collect::<Vec<u64>>());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn grouped_sweep_runs_each_group_in_one_call() {
        let (enc, dec) = codec_u64();
        let calls = AtomicUsize::new(0);
        let out = run_sweep_grouped(
            &keys(6),
            &quiet(2),
            |pending| pending.chunks(3).map(<[usize]>::to_vec).collect(),
            |members| {
                calls.fetch_add(1, Ordering::Relaxed);
                members.iter().map(|&i| i as u64 * 7).collect()
            },
            &enc,
            &dec,
        )
        .unwrap();
        assert_eq!(out, (0..6).map(|i| i * 7).collect::<Vec<u64>>());
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn grouped_sweep_rejects_a_bad_partition() {
        let (enc, dec) = codec_u64();
        // Index 1 appears twice — key/result alignment would corrupt.
        let _ = run_sweep_grouped(
            &keys(4),
            &quiet(1),
            |_| vec![vec![0, 1], vec![1, 2, 3]],
            |members| members.iter().map(|&i| i as u64).collect(),
            &enc,
            &dec,
        );
    }

    #[test]
    fn grouped_resume_reforms_groups_from_surviving_cells() {
        let mut path = std::env::temp_dir();
        path.push(format!("slip-sweep-grouped-resume-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let opts = SweepOptions {
            jobs: 1,
            journal: Some(path.clone()),
            quiet: true,
            label: "test".to_owned(),
            cancel: None,
        };
        let (enc, dec) = codec_u64();
        // Seed the journal with the first three cells, as if a grouped
        // sweep was interrupted mid-group.
        run_sweep(&keys(6)[..3], &opts, |i| i as u64 * 7, &enc, &dec).unwrap();

        // Re-sweep all six: only the survivors reach group(), and they
        // run in a single call.
        let calls = AtomicUsize::new(0);
        let seen = Mutex::new(Vec::new());
        let out = run_sweep_grouped(
            &keys(6),
            &opts,
            |pending| {
                *seen.lock().unwrap() = pending.to_vec();
                vec![pending.to_vec()]
            },
            |members| {
                calls.fetch_add(1, Ordering::Relaxed);
                members.iter().map(|&i| i as u64 * 7).collect()
            },
            &enc,
            &dec,
        )
        .unwrap();
        assert_eq!(seen.into_inner().unwrap(), vec![3, 4, 5]);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(out, (0..6).map(|i| i * 7).collect::<Vec<u64>>());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_sweep_is_fine() {
        let (enc, dec) = codec_u64();
        let out = run_sweep(&[], &quiet(4), |_| 0u64, &enc, &dec).unwrap();
        assert!(out.is_empty());
    }
}
