//! The JSONL run journal: one line per completed cell.
//!
//! Line schema (see DESIGN.md §8):
//!
//! ```json
//! {"v":1,"key":"<cell key>","wall_ms":123.4,"metrics":{...},"payload":{...}}
//! ```
//!
//! * `key` — a caller-chosen string that must encode everything the
//!   cell's result depends on (benchmark, policy, trace length, seed,
//!   technology node, ...). Resume matches on it verbatim.
//! * `wall_ms` — how long the cell took when it actually ran.
//! * `metrics` — small human-oriented observability summary
//!   (accesses/sec, hit rates, energy totals).
//! * `payload` — the full machine-readable result; `decode` in
//!   [`crate::run_sweep`] rebuilds the in-memory result from it.
//!
//! Appends are flushed per line under a mutex, so a sweep killed
//! mid-run loses at most the cells still in flight; unparseable
//! (truncated) lines are skipped on load.

use crate::json::Value;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// True when a non-empty file does not end in `\n` — the signature of a
/// write torn by a crash.
fn file_lacks_final_newline(path: &Path) -> std::io::Result<bool> {
    let mut f = File::open(path)?;
    let len = f.metadata()?.len();
    if len == 0 {
        return Ok(false);
    }
    f.seek(SeekFrom::End(-1))?;
    let mut last = [0u8; 1];
    f.read_exact(&mut last)?;
    Ok(last[0] != b'\n')
}

/// Journal line format version.
pub const JOURNAL_VERSION: u64 = 1;

/// An append-only JSONL journal of completed sweep cells.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
    completed: HashMap<String, Value>,
    skipped: usize,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, loading every
    /// well-formed line already present. Torn or corrupt lines (a
    /// truncated final write, a foreign format version) are skipped and
    /// counted in [`skipped`](Self::skipped) — their cells simply
    /// re-run — so one bad line never poisons the rest of the journal.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let mut completed = HashMap::new();
        let mut skipped = 0;
        let mut torn_tail = false;
        if path.exists() {
            let reader = BufReader::new(File::open(&path)?);
            for line in reader.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                let Ok(v) = Value::parse(&line) else {
                    skipped += 1;
                    continue;
                };
                if v.get("v").and_then(Value::as_u64) != Some(JOURNAL_VERSION) {
                    skipped += 1;
                    continue;
                }
                let (Some(key), Some(payload)) =
                    (v.get("key").and_then(Value::as_str), v.get("payload"))
                else {
                    skipped += 1;
                    continue;
                };
                completed.insert(key.to_owned(), payload.clone());
            }
            torn_tail = file_lacks_final_newline(&path)?;
        }
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if torn_tail {
            // A crash mid-append left a half-written final line. Seal it
            // with a newline so fresh records never merge into the torn
            // bytes (which would corrupt them too).
            writeln!(file)?;
            file.flush()?;
        }
        Ok(Journal {
            path,
            file: Mutex::new(file),
            completed,
            skipped,
        })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The payload recorded for `key` when the journal was opened, if
    /// any.
    pub fn payload(&self, key: &str) -> Option<&Value> {
        self.completed.get(key)
    }

    /// Number of completed cells loaded at open time.
    pub fn loaded(&self) -> usize {
        self.completed.len()
    }

    /// Number of non-empty lines skipped at open time because they
    /// were truncated, unparseable, of a foreign version, or missing
    /// their key/payload.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Appends one completed cell and flushes the line to disk.
    /// Thread-safe; lines are never interleaved.
    pub fn record(
        &self,
        key: &str,
        wall_ms: f64,
        metrics: Value,
        payload: Value,
    ) -> std::io::Result<()> {
        let line = Value::object()
            .with("v", Value::u64(JOURNAL_VERSION))
            .with("key", Value::str(key))
            .with("wall_ms", Value::f64(wall_ms))
            .with("metrics", metrics)
            .with("payload", payload)
            .to_json();
        let mut file = self.file.lock().expect("journal file poisoned");
        writeln!(file, "{line}")?;
        file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("slip-journal-test-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn write_then_reload_round_trips() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let j = Journal::open(&path).unwrap();
            assert_eq!(j.loaded(), 0);
            j.record(
                "gcc/SLIP+ABP",
                12.5,
                Value::object().with("rate", Value::f64(0.93)),
                Value::object().with("energy_pj", Value::f64(1234.5)),
            )
            .unwrap();
        }
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.loaded(), 1);
        let p = j.payload("gcc/SLIP+ABP").unwrap();
        assert_eq!(p.get("energy_pj").and_then(Value::as_f64), Some(1234.5));
        assert!(j.payload("gcc/baseline").is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_and_foreign_lines_are_skipped() {
        let path = temp_path("torn");
        std::fs::write(
            &path,
            "{\"v\":1,\"key\":\"ok\",\"wall_ms\":1,\"metrics\":{},\"payload\":{\"x\":1}}\n\
             {\"v\":99,\"key\":\"wrong-version\",\"payload\":{}}\n\
             {\"v\":1,\"key\":\"truncat",
        )
        .unwrap();
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.loaded(), 1);
        assert_eq!(j.skipped(), 2, "torn + foreign-version lines counted");
        assert!(j.payload("ok").is_some());
        assert!(j.payload("wrong-version").is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn clean_journals_report_zero_skips() {
        let path = temp_path("clean");
        let _ = std::fs::remove_file(&path);
        {
            let j = Journal::open(&path).unwrap();
            assert_eq!(j.skipped(), 0, "fresh journal");
            j.record("k", 1.0, Value::object(), Value::u64(7)).unwrap();
        }
        let j = Journal::open(&path).unwrap();
        assert_eq!((j.loaded(), j.skipped()), (1, 0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn later_records_win_on_duplicate_keys() {
        let path = temp_path("dup");
        let _ = std::fs::remove_file(&path);
        {
            let j = Journal::open(&path).unwrap();
            j.record("k", 1.0, Value::object(), Value::u64(1)).unwrap();
            j.record("k", 1.0, Value::object(), Value::u64(2)).unwrap();
        }
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.payload("k").and_then(Value::as_u64), Some(2));
        std::fs::remove_file(&path).unwrap();
    }
}
