//! Worker pools: the scoped per-sweep pool and the long-lived shared
//! pool used by the serve daemon.
//!
//! * [`run_indexed`] / [`run_indexed_cancellable`] — a
//!   `std::thread::scope` pool over an indexed job list. Workers drain
//!   a shared atomic counter, so scheduling is dynamic (long cells
//!   don't block short ones behind a static partition), but results
//!   are returned **in job-index order** regardless of which worker
//!   finished when. Combined with per-cell seeding this makes a
//!   parallel sweep bit-identical to a serial one.
//! * [`SharedPool`] — a persistent pool that multiplexes many
//!   *requests* onto one set of workers. Each request registers its own
//!   queue of jobs; workers pick the next job **round-robin across
//!   queues**, so a small request is never starved behind a large one
//!   (fairness across clients). Every queue carries a cancellation
//!   token, and the number of simultaneously active queues is bounded
//!   (admission backpressure): [`SharedPool::try_submit`] refuses new
//!   queues beyond the limit instead of queueing unboundedly.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Number of workers to use when the caller does not say: the host's
/// available parallelism, or 1 if that cannot be determined.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f(0..count)` on `jobs` workers and returns the results in
/// index order.
///
/// `jobs <= 1` runs inline on the calling thread with no pool at all,
/// so the serial path has zero threading overhead. A panic in any job
/// propagates to the caller once the scope joins.
pub fn run_indexed<T, F>(count: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let ran = run_indexed_cancellable(count, jobs, None, f);
    debug_assert_eq!(ran.len(), count);
    ran.into_iter().map(|(_, r)| r).collect()
}

/// Like [`run_indexed`], but stops dispatching new jobs once `cancel`
/// reads true (jobs already in flight run to completion). Returns the
/// completed `(index, result)` pairs in index order — a prefix-free
/// subset when cancelled, everything otherwise.
pub fn run_indexed_cancellable<T, F>(
    count: usize,
    jobs: usize,
    cancel: Option<&AtomicBool>,
    f: F,
) -> Vec<(usize, T)>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let cancelled = || cancel.is_some_and(|c| c.load(Ordering::SeqCst));
    let jobs = jobs.max(1).min(count.max(1));
    if jobs <= 1 {
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            if cancelled() {
                break;
            }
            out.push((i, f(i)));
        }
        return out;
    }

    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(count));
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                if cancelled() {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let r = f(i);
                done.lock().expect("result sink poisoned").push((i, r));
            });
        }
    });

    let mut results = done.into_inner().expect("result sink poisoned");
    results.sort_unstable_by_key(|&(i, _)| i);
    results
}

/// A job owned by a [`SharedPool`] queue.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// One request-scoped queue of pending jobs.
struct Queue {
    jobs: VecDeque<Job>,
    cancel: Arc<AtomicBool>,
}

struct Sched {
    /// Active queues; a queue leaves the list when its last pending
    /// job is taken (jobs already dispatched keep running).
    queues: Vec<Queue>,
    /// Round-robin cursor over `queues`.
    rr: usize,
    /// Jobs currently executing on workers.
    running: usize,
    /// Stop dispatching and let workers exit.
    shutdown: bool,
}

struct PoolShared {
    sched: Mutex<Sched>,
    /// Workers wait here for dispatchable jobs.
    work: Condvar,
    /// Waiters (drain, shutdown) wait here for quiescence.
    idle: Condvar,
}

impl PoolShared {
    /// Takes the next dispatchable job round-robin across queues,
    /// dropping cancelled queues' pending jobs on the way.
    fn take(sched: &mut Sched) -> Option<Job> {
        while !sched.queues.is_empty() {
            if sched.rr >= sched.queues.len() {
                sched.rr = 0;
            }
            let q = &mut sched.queues[sched.rr];
            if q.cancel.load(Ordering::SeqCst) {
                // Cancellation token tripped: discard the queue's
                // remaining jobs without running them.
                sched.queues.remove(sched.rr);
                continue;
            }
            let job = q.jobs.pop_front();
            if q.jobs.is_empty() {
                sched.queues.remove(sched.rr);
            } else {
                sched.rr += 1;
            }
            if let Some(job) = job {
                return Some(job);
            }
        }
        None
    }
}

/// Handle to one submitted request queue.
#[derive(Debug)]
pub struct QueueHandle {
    cancel: Arc<AtomicBool>,
}

impl QueueHandle {
    /// The queue's cancellation token: share it with the jobs
    /// themselves so long-running work can poll it too.
    pub fn cancel_token(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// Trips the cancellation token: pending jobs of this queue are
    /// discarded; jobs already dispatched run to completion.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
    }
}

/// A long-lived worker pool multiplexing request-scoped job queues.
///
/// See the module docs for the scheduling contract (round-robin
/// fairness, cancellation, bounded admission).
pub struct SharedPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    max_queues: usize,
}

/// [`SharedPool::try_submit`] refusal: the pool already has its maximum
/// number of active queues — try again once one drains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolBusy;

impl std::fmt::Display for PoolBusy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker pool is at its active-queue limit")
    }
}

impl std::error::Error for PoolBusy {}

impl SharedPool {
    /// Spawns `jobs` workers (at least 1) accepting up to `max_queues`
    /// simultaneously active request queues.
    pub fn new(jobs: usize, max_queues: usize) -> SharedPool {
        let shared = Arc::new(PoolShared {
            sched: Mutex::new(Sched {
                queues: Vec::new(),
                rr: 0,
                running: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let workers = (0..jobs.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("slip-pool-{i}"))
                    .spawn(move || Self::worker(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        SharedPool {
            shared,
            workers,
            max_queues: max_queues.max(1),
        }
    }

    fn worker(shared: &PoolShared) {
        loop {
            let job = {
                let mut sched = shared.sched.lock().expect("pool scheduler poisoned");
                loop {
                    if let Some(job) = PoolShared::take(&mut sched) {
                        sched.running += 1;
                        break Some(job);
                    }
                    // `take` may have emptied the queue list by
                    // discarding cancelled queues; drain() waiters only
                    // learn about quiescence from us.
                    if sched.running == 0 {
                        shared.idle.notify_all();
                    }
                    if sched.shutdown {
                        break None;
                    }
                    sched = shared.work.wait(sched).expect("pool scheduler poisoned");
                }
            };
            let Some(job) = job else { return };
            // A panicking job must not take the worker (and with it the
            // whole server) down; the submitter observes the missing
            // result through its own completion tracking.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            let mut sched = shared.sched.lock().expect("pool scheduler poisoned");
            sched.running -= 1;
            if sched.running == 0 && sched.queues.is_empty() {
                shared.idle.notify_all();
            }
        }
    }

    /// Registers a new request queue holding `jobs`, or refuses with
    /// [`PoolBusy`] when the active-queue limit is reached
    /// (admission backpressure). An empty job list is accepted and
    /// completes immediately.
    pub fn try_submit(&self, jobs: Vec<Job>) -> Result<QueueHandle, PoolBusy> {
        let cancel = Arc::new(AtomicBool::new(false));
        let handle = QueueHandle {
            cancel: Arc::clone(&cancel),
        };
        if jobs.is_empty() {
            return Ok(handle);
        }
        let mut sched = self.shared.sched.lock().expect("pool scheduler poisoned");
        if sched.queues.len() >= self.max_queues {
            return Err(PoolBusy);
        }
        sched.queues.push(Queue {
            jobs: jobs.into(),
            cancel,
        });
        drop(sched);
        self.shared.work.notify_all();
        Ok(handle)
    }

    /// Convenience: submit boxed closures built from an iterator.
    pub fn try_submit_jobs<F>(
        &self,
        jobs: impl IntoIterator<Item = F>,
    ) -> Result<QueueHandle, PoolBusy>
    where
        F: FnOnce() + Send + 'static,
    {
        self.try_submit(jobs.into_iter().map(|f| Box::new(f) as Job).collect())
    }

    /// Blocks until no queue holds pending jobs and no job is running.
    pub fn drain(&self) {
        let mut sched = self.shared.sched.lock().expect("pool scheduler poisoned");
        while sched.running > 0 || !sched.queues.is_empty() {
            sched = self
                .shared
                .idle
                .wait(sched)
                .expect("pool scheduler poisoned");
        }
    }

    /// Graceful shutdown: stops dispatching (pending jobs are
    /// discarded), lets in-flight jobs finish, and joins the workers.
    pub fn shutdown(mut self) {
        {
            let mut sched = self.shared.sched.lock().expect("pool scheduler poisoned");
            sched.shutdown = true;
            sched.queues.clear();
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn results_come_back_in_index_order() {
        // Make later jobs finish first by sleeping inversely to index.
        let out = run_indexed(16, 4, |i| {
            std::thread::sleep(Duration::from_millis((16 - i as u64) % 4));
            i * 10
        });
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_runs_inline() {
        let tid = std::thread::current().id();
        let out = run_indexed(4, 1, |i| {
            assert_eq!(std::thread::current().id(), tid);
            i
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran = AtomicU64::new(0);
        let n = 100;
        run_indexed(n, 8, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(ran.load(Ordering::Relaxed), n as u64);
    }

    #[test]
    fn zero_jobs_and_empty_lists_are_fine() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(3, 0, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }

    #[test]
    fn cancellation_stops_dispatch_but_keeps_completed_prefix() {
        let cancel = AtomicBool::new(false);
        // Serial path: cancel after job 2; jobs 3.. never run.
        let ran = run_indexed_cancellable(10, 1, Some(&cancel), |i| {
            if i == 2 {
                cancel.store(true, Ordering::SeqCst);
            }
            i * 7
        });
        assert_eq!(ran, vec![(0, 0), (1, 7), (2, 14)]);

        // Parallel path: at least the in-flight jobs complete, nothing
        // is dispatched after the flag trips, and results stay sorted.
        let cancel = AtomicBool::new(false);
        let ran = run_indexed_cancellable(64, 4, Some(&cancel), |i| {
            if i == 8 {
                cancel.store(true, Ordering::SeqCst);
            }
            i
        });
        assert!(ran.len() < 64, "cancellation must drop some jobs");
        assert!(ran.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(ran.iter().any(|&(i, _)| i == 8));
    }

    #[test]
    fn shared_pool_runs_all_jobs_of_all_queues() {
        let pool = SharedPool::new(4, 8);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..3 {
            let handles: Vec<_> = (0..10)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    }
                })
                .collect();
            pool.try_submit_jobs(handles).unwrap();
        }
        pool.drain();
        assert_eq!(counter.load(Ordering::Relaxed), 30);
        pool.shutdown();
    }

    #[test]
    fn single_worker_interleaves_queues_round_robin() {
        let pool = SharedPool::new(1, 8);
        let order = Arc::new(Mutex::new(Vec::new()));
        // Stall the worker so both queues are registered before any job
        // is dispatched.
        let gate = Arc::new(AtomicBool::new(false));
        {
            let gate = Arc::clone(&gate);
            pool.try_submit_jobs([move || {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }])
            .unwrap();
        }
        for tag in ["a", "b"] {
            let jobs: Vec<_> = (0..3)
                .map(|i| {
                    let order = Arc::clone(&order);
                    move || order.lock().unwrap().push(format!("{tag}{i}"))
                })
                .collect();
            pool.try_submit_jobs(jobs).unwrap();
        }
        gate.store(true, Ordering::SeqCst);
        pool.drain();
        let order = order.lock().unwrap().clone();
        // One worker, two queues: dispatch alternates a0 b0 a1 b1 a2 b2.
        assert_eq!(order, ["a0", "b0", "a1", "b1", "a2", "b2"]);
        pool.shutdown();
    }

    #[test]
    fn cancelled_queue_drops_pending_jobs() {
        let pool = SharedPool::new(1, 8);
        let gate = Arc::new(AtomicBool::new(false));
        {
            let gate = Arc::clone(&gate);
            pool.try_submit_jobs([move || {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }])
            .unwrap();
        }
        let ran = Arc::new(AtomicU64::new(0));
        let jobs: Vec<_> = (0..5)
            .map(|_| {
                let ran = Arc::clone(&ran);
                move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                }
            })
            .collect();
        let handle = pool.try_submit_jobs(jobs).unwrap();
        handle.cancel();
        gate.store(true, Ordering::SeqCst);
        pool.drain();
        assert_eq!(ran.load(Ordering::Relaxed), 0, "pending jobs discarded");
        pool.shutdown();
    }

    #[test]
    fn admission_backpressure_refuses_excess_queues() {
        let pool = SharedPool::new(1, 1);
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        // Queue 1: a job blocking the only worker, plus a pending one so
        // the queue stays active.
        pool.try_submit(vec![
            Box::new({
                let g = Arc::clone(&g);
                move || {
                    while !g.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }),
            Box::new(move || {
                let _ = &g;
            }),
        ])
        .unwrap();
        // Queue 2 must be refused while queue 1 still has pending jobs.
        assert_eq!(pool.try_submit_jobs([|| {}]).unwrap_err(), PoolBusy);
        gate.store(true, Ordering::SeqCst);
        pool.drain();
        // Once drained, admission reopens.
        pool.try_submit_jobs([|| {}]).unwrap();
        pool.drain();
        pool.shutdown();
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let pool = SharedPool::new(2, 4);
        pool.try_submit_jobs([|| panic!("job blew up")]).unwrap();
        pool.drain();
        let ran = Arc::new(AtomicU64::new(0));
        let r = Arc::clone(&ran);
        pool.try_submit_jobs([move || {
            r.fetch_add(1, Ordering::Relaxed);
        }])
        .unwrap();
        pool.drain();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        pool.shutdown();
    }

    #[test]
    fn shutdown_discards_pending_and_joins() {
        let pool = SharedPool::new(1, 4);
        let gate = Arc::new(AtomicBool::new(false));
        {
            let gate = Arc::clone(&gate);
            pool.try_submit_jobs([move || {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }])
            .unwrap();
        }
        let ran = Arc::new(AtomicU64::new(0));
        let r = Arc::clone(&ran);
        pool.try_submit_jobs([move || {
            r.fetch_add(1, Ordering::Relaxed);
        }])
        .unwrap();
        gate.store(true, Ordering::SeqCst);
        pool.shutdown();
        // The pending second queue may or may not have been dispatched
        // before shutdown flipped; what matters is that shutdown
        // returned (workers joined) without running anything after it.
        assert!(ran.load(Ordering::Relaxed) <= 1);
    }
}
