//! A scoped worker pool over an indexed job list.
//!
//! Workers drain a shared atomic counter, so scheduling is dynamic
//! (long cells don't block short ones behind a static partition), but
//! results are returned **in job-index order** regardless of which
//! worker finished when. Combined with per-cell seeding this makes a
//! parallel sweep bit-identical to a serial one.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers to use when the caller does not say: the host's
/// available parallelism, or 1 if that cannot be determined.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f(0..count)` on `jobs` workers and returns the results in
/// index order.
///
/// `jobs <= 1` runs inline on the calling thread with no pool at all,
/// so the serial path has zero threading overhead. A panic in any job
/// propagates to the caller once the scope joins.
pub fn run_indexed<T, F>(count: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(count.max(1));
    if jobs <= 1 {
        return (0..count).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(count));
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let r = f(i);
                done.lock().expect("result sink poisoned").push((i, r));
            });
        }
    });

    let mut results = done.into_inner().expect("result sink poisoned");
    debug_assert_eq!(results.len(), count);
    results.sort_unstable_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_index_order() {
        // Make later jobs finish first by sleeping inversely to index.
        let out = run_indexed(16, 4, |i| {
            std::thread::sleep(std::time::Duration::from_millis((16 - i as u64) % 4));
            i * 10
        });
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_runs_inline() {
        let tid = std::thread::current().id();
        let out = run_indexed(4, 1, |i| {
            assert_eq!(std::thread::current().id(), tid);
            i
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran = AtomicU64::new(0);
        let n = 100;
        run_indexed(n, 8, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(ran.load(Ordering::Relaxed), n as u64);
    }

    #[test]
    fn zero_jobs_and_empty_lists_are_fine() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(3, 0, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }
}
