//! Cooperative SIGINT/SIGTERM handling for long-running sweeps and the
//! `slip serve` daemon.
//!
//! `std` exposes no signal API, so the handler is registered through
//! the C `signal(2)` entry point that `std` already links (no `libc`
//! crate). The handler does the only async-signal-safe thing possible:
//! it stores into a static [`AtomicBool`]. Everything else — stopping
//! cell dispatch, sealing the journal, draining the server — happens
//! cooperatively in normal code that polls [`interrupted`].
//!
//! The worker pool checks the flag between cells, so an interrupted
//! sweep finishes the cells already in flight, flushes their journal
//! records (each record is written and flushed atomically under the
//! journal mutex, so a polled interrupt can never tear a line), and
//! returns [`std::io::ErrorKind::Interrupted`] — the journal is then a
//! clean prefix and a re-run with the same options resumes from it.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; polled by the pool loop.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);
/// Guards one-time handler installation.
static INSTALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;
    extern "C" {
        /// C `signal(2)`; `std` links the platform C runtime already.
        pub fn signal(signum: i32, handler: usize) -> usize;
    }
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT/SIGTERM handler (idempotent) and returns the
/// flag it sets. On non-unix targets this is a no-op flag that only
/// [`trip`] can set.
pub fn install() -> &'static AtomicBool {
    #[cfg(unix)]
    if !INSTALLED.swap(true, Ordering::SeqCst) {
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            sys::signal(sys::SIGINT, handler);
            sys::signal(sys::SIGTERM, handler);
        }
    }
    #[cfg(not(unix))]
    INSTALLED.store(true, Ordering::SeqCst);
    &INTERRUPTED
}

/// Whether an interrupt has been delivered (or [`trip`]ed) since the
/// last [`reset`].
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Sets the flag without a signal — for tests and for protocol-driven
/// shutdown paths that want to share the drain machinery.
pub fn trip() {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Clears the flag (a drained server may want to serve again; tests
/// must not leak state into each other).
pub fn reset() {
    INTERRUPTED.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: the flag is process-global state and the
    // harness runs tests in parallel threads.
    #[test]
    fn flag_round_trips_and_real_sigint_sets_it() {
        reset();
        assert!(!interrupted());
        trip();
        assert!(interrupted());
        reset();
        assert!(!interrupted());

        #[cfg(unix)]
        {
            extern "C" {
                fn raise(signum: i32) -> i32;
            }
            let flag = install();
            flag.store(false, Ordering::SeqCst);
            // With the handler installed, raising SIGINT must set the
            // flag instead of killing the process.
            unsafe { raise(super::sys::SIGINT) };
            assert!(interrupted());
            reset();
        }
    }
}
