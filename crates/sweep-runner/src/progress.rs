//! Live progress lines on stderr.
//!
//! One line per completed cell plus a summary, e.g.:
//!
//! ```text
//! [suite 3/10] gcc/SLIP+ABP: 1.43s (1398 kacc/s, L2 81.2%, L3 44.0%)
//! [suite] 10 cells done (4 from journal) in 4.1s
//! ```
//!
//! The detail inside the parentheses is extracted from the cell's
//! metrics object when the well-known keys are present, so the engine
//! itself stays domain-agnostic.

use crate::json::Value;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Work accumulated across completed cells, for the end-of-sweep
/// aggregate throughput line.
#[derive(Debug, Default, Clone)]
struct Aggregate {
    /// Simulated accesses: the cell's raw `accesses` counter when it
    /// reports one, else reconstructed from its reported rate.
    accesses: f64,
    /// Per-cell wall seconds, summed (worker time, not sweep time).
    cell_secs: f64,
    /// Cells that contributed to the sums above. Cells with a raw
    /// counter always count (the counter is exact at any wall time);
    /// rate-only cells reporting a zero/non-finite rate or ~0 wall
    /// time are excluded, so the footer never aggregates a
    /// reconstruction that rounds to garbage.
    rated_cells: usize,
    /// Cells counted per `trace_source` metric label (e.g. `cached`
    /// cache hits vs `materialized` misses vs `regenerated`
    /// cache-bypass fallbacks), in first-seen order.
    trace_sources: Vec<(String, usize)>,
    /// Cells counted per `exec_mode` metric label (the execution path
    /// that actually ran — `fused`, `sharded`, `pipelined`, ... — which
    /// can differ from the requested mode on fallback), in first-seen
    /// order.
    exec_modes: Vec<(String, usize)>,
}

/// Rate-only cells whose wall time rounds to nothing (tiny `--quick`
/// cells) carry no throughput signal; below this their `rate * wall`
/// reconstruction is left out of the aggregate. Cells that report a
/// raw `accesses` counter are exempt — the counter is exact however
/// fast the cell finished.
const MIN_RATED_SECS: f64 = 1e-6;

/// Progress reporter for one sweep. Thread-safe.
#[derive(Debug)]
pub struct Progress {
    label: String,
    total: usize,
    done: AtomicUsize,
    quiet: bool,
    started: Instant,
    aggregate: Mutex<Aggregate>,
}

impl Progress {
    /// Creates a reporter for `total` cells; `quiet` suppresses all
    /// output.
    pub fn new(label: impl Into<String>, total: usize, quiet: bool) -> Progress {
        Progress {
            label: label.into(),
            total,
            done: AtomicUsize::new(0),
            quiet,
            started: Instant::now(),
            aggregate: Mutex::new(Aggregate::default()),
        }
    }

    /// Reports one completed cell.
    pub fn cell_done(&self, key: &str, wall: Duration, metrics: &Value) {
        let n = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let rate = metrics
            .get("accesses_per_sec")
            .and_then(Value::as_f64)
            .filter(|r| r.is_finite() && *r > 0.0);
        let trace_source = metrics.get("trace_source").and_then(Value::as_str);
        let accesses = metrics.get("accesses").and_then(Value::as_u64);
        {
            let mut agg = self.aggregate.lock().unwrap();
            if let Some(n) = accesses {
                // Raw counter: sum it directly. A cell that finished in
                // under a millisecond still simulated exactly n
                // accesses — reconstructing that from its (huge) rate
                // times its (~0) wall used to drop or mangle it.
                agg.accesses += n as f64;
                agg.cell_secs += wall.as_secs_f64();
                agg.rated_cells += 1;
            } else if let Some(rate) = rate {
                if wall.as_secs_f64() >= MIN_RATED_SECS {
                    agg.accesses += rate * wall.as_secs_f64();
                    agg.cell_secs += wall.as_secs_f64();
                    agg.rated_cells += 1;
                }
            }
            if let Some(source) = trace_source {
                match agg.trace_sources.iter_mut().find(|(s, _)| s == source) {
                    Some((_, n)) => *n += 1,
                    None => agg.trace_sources.push((source.to_owned(), 1)),
                }
            }
            if let Some(mode) = metrics.get("exec_mode").and_then(Value::as_str) {
                match agg.exec_modes.iter_mut().find(|(s, _)| s == mode) {
                    Some((_, n)) => *n += 1,
                    None => agg.exec_modes.push((mode.to_owned(), 1)),
                }
            }
        }
        if self.quiet {
            return;
        }
        let mut detail = String::new();
        if let Some(rate) = rate {
            detail.push_str(&format!("{:.0} kacc/s", rate / 1e3));
        }
        for (json_key, label) in [("l2_hit_rate", "L2"), ("l3_hit_rate", "L3")] {
            if let Some(r) = metrics.get(json_key).and_then(Value::as_f64) {
                if !detail.is_empty() {
                    detail.push_str(", ");
                }
                detail.push_str(&format!("{label} {:.1}%", r * 100.0));
            }
        }
        if detail.is_empty() {
            eprintln!(
                "[{} {n}/{}] {key}: {:.2}s",
                self.label,
                self.total,
                wall.as_secs_f64()
            );
        } else {
            eprintln!(
                "[{} {n}/{}] {key}: {:.2}s ({detail})",
                self.label,
                self.total,
                wall.as_secs_f64()
            );
        }
    }

    /// Aggregate simulator throughput in accesses per second across all
    /// rated cells (total simulated accesses over total per-cell wall
    /// time), or `None` when no cell reported a usable rate.
    pub fn aggregate_rate(&self) -> Option<f64> {
        let agg = self.aggregate.lock().unwrap();
        (agg.rated_cells > 0 && agg.cell_secs >= MIN_RATED_SECS)
            .then(|| agg.accesses / agg.cell_secs)
            .filter(|r| r.is_finite())
    }

    /// Prints the end-of-sweep summary; `from_journal` is how many
    /// cells were restored rather than run.
    pub fn finish(&self, from_journal: usize) {
        if self.quiet {
            return;
        }
        let agg = self.aggregate.lock().unwrap().clone();
        let mut detail = String::new();
        if let Some(rate) = self.aggregate_rate() {
            // Mean over the rated cells only; unrated cells would drag
            // the mean toward zero without carrying any signal.
            let mean = agg.cell_secs / agg.rated_cells as f64;
            detail = format!(" ({:.0} kacc/s aggregate, {mean:.2}s/cell)", rate / 1e3);
        }
        if !agg.trace_sources.is_empty() {
            let counts: Vec<String> = agg
                .trace_sources
                .iter()
                .map(|(s, n)| format!("{n} {s}"))
                .collect();
            detail.push_str(&format!(" [traces: {}]", counts.join(", ")));
        }
        if !agg.exec_modes.is_empty() {
            let counts: Vec<String> = agg
                .exec_modes
                .iter()
                .map(|(s, n)| format!("{n} {s}"))
                .collect();
            detail.push_str(&format!(" [exec: {}]", counts.join(", ")));
        }
        eprintln!(
            "[{}] {} cells done ({from_journal} from journal) in {:.1}s{detail}",
            self.label,
            self.total + from_journal,
            self.started.elapsed().as_secs_f64()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_cells_without_printing_when_quiet() {
        let p = Progress::new("t", 2, true);
        p.cell_done("a", Duration::from_millis(5), &Value::object());
        p.cell_done(
            "b",
            Duration::from_millis(5),
            &Value::object().with("accesses_per_sec", Value::f64(1e6)),
        );
        p.finish(0);
        assert_eq!(p.done.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn aggregates_throughput_across_cells() {
        let p = Progress::new("t", 2, true);
        assert!(p.aggregate_rate().is_none());
        // 1 Macc/s for 2s + 3 Macc/s for 1s = 5 Macc over 3s.
        p.cell_done(
            "a",
            Duration::from_secs(2),
            &Value::object().with("accesses_per_sec", Value::f64(1e6)),
        );
        p.cell_done(
            "b",
            Duration::from_secs(1),
            &Value::object().with("accesses_per_sec", Value::f64(3e6)),
        );
        let rate = p.aggregate_rate().unwrap();
        assert!((rate - 5e6 / 3.0).abs() < 1.0, "rate was {rate}");
        // Cells without a rate don't perturb the aggregate.
        p.cell_done("c", Duration::from_secs(9), &Value::object());
        assert!((p.aggregate_rate().unwrap() - rate).abs() < 1.0);
    }

    #[test]
    fn nonsense_rates_never_reach_the_footer() {
        let p = Progress::new("t", 4, true);
        // Zero rate (the codec's secs<=0 fallback), non-finite rates,
        // and a ~0-wall cell: none may contribute.
        p.cell_done(
            "zero",
            Duration::from_secs(1),
            &Value::object().with("accesses_per_sec", Value::f64(0.0)),
        );
        p.cell_done(
            "inf",
            Duration::from_secs(1),
            &Value::object().with("accesses_per_sec", Value::f64(f64::INFINITY)),
        );
        p.cell_done(
            "nan",
            Duration::from_secs(1),
            &Value::object().with("accesses_per_sec", Value::f64(f64::NAN)),
        );
        p.cell_done(
            "instant",
            Duration::from_nanos(1),
            &Value::object().with("accesses_per_sec", Value::f64(1e6)),
        );
        assert_eq!(p.aggregate_rate(), None);
        p.finish(0); // quiet, but must not divide by zero either way
                     // One sane cell and the aggregate is back.
        p.cell_done(
            "ok",
            Duration::from_secs(1),
            &Value::object().with("accesses_per_sec", Value::f64(2e6)),
        );
        let rate = p.aggregate_rate().unwrap();
        assert!((rate - 2e6).abs() < 1.0, "rate was {rate}");
    }

    #[test]
    fn raw_counters_survive_sub_millisecond_cells() {
        let p = Progress::new("t", 3, true);
        // Three cells of 30k accesses each, finishing in 100µs, 500µs,
        // and 400µs: 90k accesses over 1ms total. The old rate-based
        // reconstruction dropped the 100µs cell entirely at coarser
        // thresholds and amplified rounding in the rest; raw counters
        // sum exactly.
        for (micros, rate) in [(100u64, 3e8), (500, 6e7), (400, 7.5e7)] {
            p.cell_done(
                "c",
                Duration::from_micros(micros),
                &Value::object()
                    .with("accesses", Value::u64(30_000))
                    .with("accesses_per_sec", Value::f64(rate)),
            );
        }
        let agg = p.aggregate.lock().unwrap().clone();
        assert_eq!(agg.rated_cells, 3);
        assert_eq!(agg.accesses, 90_000.0);
        let rate = p.aggregate_rate().unwrap();
        assert!((rate - 90_000.0 / 1e-3).abs() < 1.0, "rate was {rate}");
    }

    #[test]
    fn raw_counters_beat_bogus_rates() {
        let p = Progress::new("t", 1, true);
        // A cell with a raw counter contributes even when its reported
        // rate is the codec's secs<=0 fallback (0.0).
        p.cell_done(
            "c",
            Duration::from_millis(2),
            &Value::object()
                .with("accesses", Value::u64(5_000))
                .with("accesses_per_sec", Value::f64(0.0)),
        );
        let agg = p.aggregate.lock().unwrap().clone();
        assert_eq!(agg.rated_cells, 1);
        assert_eq!(agg.accesses, 5_000.0);
    }

    #[test]
    fn trace_sources_are_counted_per_label() {
        let p = Progress::new("t", 4, true);
        let cached = Value::object().with("trace_source", Value::str("cached"));
        let materialized = Value::object().with("trace_source", Value::str("materialized"));
        let regen = Value::object().with("trace_source", Value::str("regenerated"));
        p.cell_done("a", Duration::from_millis(5), &materialized);
        p.cell_done("b", Duration::from_millis(5), &cached);
        p.cell_done("c", Duration::from_millis(5), &cached);
        p.cell_done("d", Duration::from_millis(5), &regen);
        let agg = p.aggregate.lock().unwrap().clone();
        assert_eq!(
            agg.trace_sources,
            vec![
                ("materialized".to_owned(), 1),
                ("cached".to_owned(), 2),
                ("regenerated".to_owned(), 1)
            ]
        );
        p.finish(0);
    }

    #[test]
    fn exec_modes_are_counted_per_label() {
        let p = Progress::new("t", 3, true);
        let fused = Value::object().with("exec_mode", Value::str("fused"));
        let sharded = Value::object().with("exec_mode", Value::str("sharded"));
        p.cell_done("a", Duration::from_millis(5), &fused);
        p.cell_done("b", Duration::from_millis(5), &fused);
        p.cell_done("c", Duration::from_millis(5), &sharded);
        let agg = p.aggregate.lock().unwrap().clone();
        assert_eq!(
            agg.exec_modes,
            vec![("fused".to_owned(), 2), ("sharded".to_owned(), 1)]
        );
        p.finish(0);
    }
}
