//! Live progress lines on stderr.
//!
//! One line per completed cell plus a summary, e.g.:
//!
//! ```text
//! [suite 3/10] gcc/SLIP+ABP: 1.43s (1398 kacc/s, L2 81.2%, L3 44.0%)
//! [suite] 10 cells done (4 from journal) in 4.1s
//! ```
//!
//! The detail inside the parentheses is extracted from the cell's
//! metrics object when the well-known keys are present, so the engine
//! itself stays domain-agnostic.

use crate::json::Value;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Work accumulated across completed cells, for the end-of-sweep
/// aggregate throughput line.
#[derive(Debug, Default, Clone, Copy)]
struct Aggregate {
    /// Simulated accesses, summed from each cell's reported rate.
    accesses: f64,
    /// Per-cell wall seconds, summed (worker time, not sweep time).
    cell_secs: f64,
}

/// Progress reporter for one sweep. Thread-safe.
#[derive(Debug)]
pub struct Progress {
    label: String,
    total: usize,
    done: AtomicUsize,
    quiet: bool,
    started: Instant,
    aggregate: Mutex<Aggregate>,
}

impl Progress {
    /// Creates a reporter for `total` cells; `quiet` suppresses all
    /// output.
    pub fn new(label: impl Into<String>, total: usize, quiet: bool) -> Progress {
        Progress {
            label: label.into(),
            total,
            done: AtomicUsize::new(0),
            quiet,
            started: Instant::now(),
            aggregate: Mutex::new(Aggregate::default()),
        }
    }

    /// Reports one completed cell.
    pub fn cell_done(&self, key: &str, wall: Duration, metrics: &Value) {
        let n = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let rate = metrics.get("accesses_per_sec").and_then(Value::as_f64);
        if let Some(rate) = rate {
            let mut agg = self.aggregate.lock().unwrap();
            agg.accesses += rate * wall.as_secs_f64();
            agg.cell_secs += wall.as_secs_f64();
        }
        if self.quiet {
            return;
        }
        let mut detail = String::new();
        if let Some(rate) = rate {
            detail.push_str(&format!("{:.0} kacc/s", rate / 1e3));
        }
        for (json_key, label) in [("l2_hit_rate", "L2"), ("l3_hit_rate", "L3")] {
            if let Some(r) = metrics.get(json_key).and_then(Value::as_f64) {
                if !detail.is_empty() {
                    detail.push_str(", ");
                }
                detail.push_str(&format!("{label} {:.1}%", r * 100.0));
            }
        }
        if detail.is_empty() {
            eprintln!(
                "[{} {n}/{}] {key}: {:.2}s",
                self.label,
                self.total,
                wall.as_secs_f64()
            );
        } else {
            eprintln!(
                "[{} {n}/{}] {key}: {:.2}s ({detail})",
                self.label,
                self.total,
                wall.as_secs_f64()
            );
        }
    }

    /// Aggregate simulator throughput in accesses per second across all
    /// reported cells (total simulated accesses over total per-cell
    /// wall time), or `None` when no cell reported a rate.
    pub fn aggregate_rate(&self) -> Option<f64> {
        let agg = *self.aggregate.lock().unwrap();
        (agg.cell_secs > 0.0).then(|| agg.accesses / agg.cell_secs)
    }

    /// Prints the end-of-sweep summary; `from_journal` is how many
    /// cells were restored rather than run.
    pub fn finish(&self, from_journal: usize) {
        if self.quiet {
            return;
        }
        let mut detail = String::new();
        if let Some(rate) = self.aggregate_rate() {
            let cells = self.done.load(Ordering::Relaxed).max(1);
            let mean = self.aggregate.lock().unwrap().cell_secs / cells as f64;
            detail = format!(" ({:.0} kacc/s aggregate, {mean:.2}s/cell)", rate / 1e3);
        }
        eprintln!(
            "[{}] {} cells done ({from_journal} from journal) in {:.1}s{detail}",
            self.label,
            self.total + from_journal,
            self.started.elapsed().as_secs_f64()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_cells_without_printing_when_quiet() {
        let p = Progress::new("t", 2, true);
        p.cell_done("a", Duration::from_millis(5), &Value::object());
        p.cell_done(
            "b",
            Duration::from_millis(5),
            &Value::object().with("accesses_per_sec", Value::f64(1e6)),
        );
        p.finish(0);
        assert_eq!(p.done.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn aggregates_throughput_across_cells() {
        let p = Progress::new("t", 2, true);
        assert!(p.aggregate_rate().is_none());
        // 1 Macc/s for 2s + 3 Macc/s for 1s = 5 Macc over 3s.
        p.cell_done(
            "a",
            Duration::from_secs(2),
            &Value::object().with("accesses_per_sec", Value::f64(1e6)),
        );
        p.cell_done(
            "b",
            Duration::from_secs(1),
            &Value::object().with("accesses_per_sec", Value::f64(3e6)),
        );
        let rate = p.aggregate_rate().unwrap();
        assert!((rate - 5e6 / 3.0).abs() < 1.0, "rate was {rate}");
        // Cells without a rate don't perturb the aggregate.
        p.cell_done("c", Duration::from_secs(9), &Value::object());
        assert!((p.aggregate_rate().unwrap() - rate).abs() < 1.0);
    }
}
