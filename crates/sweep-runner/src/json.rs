//! A minimal JSON value type with a parser and serializer.
//!
//! The run journal is JSONL and the workspace builds offline with no
//! registry access, so the codec is hand-rolled on `std` alone. Two
//! properties matter for the journal and are guaranteed here:
//!
//! * **Exact integers** — numbers are stored as their source token, so
//!   a `u64` round-trips bit-exactly (no detour through `f64`, which
//!   would corrupt counters above 2^53).
//! * **Deterministic output** — objects keep insertion order, so the
//!   same record always serializes to the same line.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its canonical token (see module docs).
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// A number value from a `u64` (exact).
    pub fn u64(v: u64) -> Value {
        Value::Num(v.to_string())
    }

    /// A number value from an `f64`; non-finite values become `null`.
    pub fn f64(v: f64) -> Value {
        if v.is_finite() {
            // Rust's Display for f64 prints the shortest string that
            // round-trips, so `as_f64` recovers the exact bits.
            Value::Num(v.to_string())
        } else {
            Value::Null
        }
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Appends a key/value pair (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn with(mut self, key: &str, value: Value) -> Value {
        match &mut self {
            Value::Object(pairs) => pairs.push((key.to_owned(), value)),
            _ => panic!("Value::with called on a non-object"),
        }
        self
    }

    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integral number token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a single-line JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(t) => out.push_str(t),
            Value::Str(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: &'static str,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            message,
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the
                            // journal (we never emit them); map lone
                            // surrogates to the replacement character.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 character (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8"))?
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        // Validate by parsing as f64; keep the exact token.
        token
            .parse::<f64>()
            .map_err(|_| self.err("invalid number"))?;
        Ok(Value::Num(token.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for src in ["null", "true", "false", "0", "-17", "3.25", "\"hi\""] {
            let v = Value::parse(src).unwrap();
            assert_eq!(v.to_json(), src);
        }
    }

    #[test]
    fn u64_is_exact_above_2_53() {
        let big = u64::MAX - 12345;
        let v = Value::u64(big);
        let back = Value::parse(&v.to_json()).unwrap();
        assert_eq!(back.as_u64(), Some(big));
    }

    #[test]
    fn f64_shortest_round_trips() {
        for x in [0.1, 1.0 / 3.0, 1e300, -2.5e-8, 0.0] {
            let v = Value::f64(x);
            let back = Value::parse(&v.to_json()).unwrap();
            assert_eq!(back.as_f64(), Some(x));
        }
        assert_eq!(Value::f64(f64::NAN), Value::Null);
        assert_eq!(Value::f64(f64::INFINITY), Value::Null);
    }

    #[test]
    fn object_preserves_order_and_lookup() {
        let v = Value::object()
            .with("b", Value::u64(2))
            .with("a", Value::u64(1));
        assert_eq!(v.to_json(), "{\"b\":2,\"a\":1}");
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn nested_structures_parse() {
        let src = r#"{"key":"a/b","metrics":{"rate":0.5,"n":10},"tags":[1,2,3],"ok":true}"#;
        let v = Value::parse(src).unwrap();
        assert_eq!(v.get("key").and_then(Value::as_str), Some("a/b"));
        assert_eq!(
            v.get("metrics")
                .and_then(|m| m.get("n"))
                .and_then(Value::as_u64),
            Some(10)
        );
        assert_eq!(
            v.get("tags").and_then(Value::as_array).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.to_json(), src);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line1\nline2\t\"quoted\" back\\slash \u{1}";
        let v = Value::str(s);
        let back = Value::parse(&v.to_json()).unwrap();
        assert_eq!(back.as_str(), Some(s));
    }

    #[test]
    fn unicode_escape_parses() {
        let v = Value::parse(r#""éΔ""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{e9}\u{394}"));
    }

    #[test]
    fn malformed_inputs_error() {
        for src in [
            "", "{", "{\"a\"}", "[1,", "tru", "\"abc", "{\"a\":}", "01x", "1 2",
        ] {
            assert!(Value::parse(src).is_err(), "{src:?} should fail");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Value::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(
            v.get("a").and_then(Value::as_array).map(<[Value]>::len),
            Some(2)
        );
    }
}
