//! End-to-end behavioral tests of the SLIP mechanism itself: policy
//! convergence, bypassing, demotion, and the sampling machinery, all
//! observed through the full system.

use cache_sim::{Access, PageId};
use sim_engine::config::{PolicyKind, SystemConfig};
use sim_engine::SingleCoreSystem;
use slip_core::{PageState, Slip};
use workloads::{PatternKind, PatternSpec, PhaseSpec, WorkloadSpec};

fn single_pattern(kind: PatternKind) -> WorkloadSpec {
    WorkloadSpec::new(
        "synthetic",
        vec![PhaseSpec {
            fraction: 1.0,
            patterns: vec![PatternSpec::new(kind, 1, 0.0)],
        }],
    )
}

fn run_system(policy: PolicyKind, spec: &WorkloadSpec, len: u64) -> SingleCoreSystem {
    let config = SystemConfig::paper_45nm(policy);
    let seed = config.seed;
    let mut system = SingleCoreSystem::new(config);
    system.run(spec.trace(len, seed));
    system
}

/// Collects the stable-page SLIP codes at one level.
fn stable_slips(system: &SingleCoreSystem, level: usize) -> Vec<Slip> {
    system
        .mmu()
        .expect("SLIP system")
        .page_table
        .iter()
        .filter(|(_, e)| e.state == PageState::Stable)
        .map(|(_, e)| Slip::from_code(3, e.slips[level]).expect("valid code"))
        .collect()
}

#[test]
fn streaming_pages_converge_to_the_all_bypass_policy() {
    // A large scan that never reuses within cache-visible distances:
    // stable pages must overwhelmingly pick the ABP at L2.
    // 2 MB footprint -> ~45 sweeps in 1.5M accesses, enough TLB misses
    // per page for nearly all pages to stabilize.
    let spec = single_pattern(PatternKind::Scan {
        region_kb: 3 * 1024,
    });
    let system = run_system(PolicyKind::SlipAbp, &spec, 1_500_000);
    let slips = stable_slips(&system, 0);
    assert!(!slips.is_empty(), "some pages must have stabilized");
    let abp = slips.iter().filter(|s| s.is_all_bypass()).count();
    assert!(
        abp as f64 / slips.len() as f64 > 0.9,
        "{abp}/{} pages chose the ABP",
        slips.len()
    );
    // And the L2 must show massive bypassing.
    let r = system.finish("scan");
    let f = r.l2_stats.insertion_class_fractions();
    assert!(f[0] > 0.5, "ABP insertion fraction {:?}", f);
}

#[test]
fn tight_loop_pages_prefer_near_chunks() {
    // A 40 KB loop (fits the 64 KB L2 sublevel 0, misses the 32 KB L1)
    // mixed with a page-churning random pattern so the loop's pages
    // actually take TLB misses — all SLIP policy work happens on TLB
    // misses (paper Figure 7), so a workload whose pages never leave
    // the TLB never re-optimizes.
    let spec = WorkloadSpec::new(
        "loop+churn",
        vec![PhaseSpec {
            fraction: 1.0,
            patterns: vec![
                PatternSpec::new(PatternKind::Loop { region_kb: 40 }, 70, 0.0),
                PatternSpec::new(
                    PatternKind::Random {
                        region_kb: 16 * 1024,
                    },
                    30,
                    0.0,
                ),
            ],
        }],
    );
    let system = run_system(PolicyKind::SlipAbp, &spec, 800_000);
    // The loop's pages are the ones in pattern region 1 (see the trace
    // layout: region index = line >> 26).
    let loop_slips: Vec<Slip> = system
        .mmu()
        .expect("SLIP system")
        .page_table
        .iter()
        .filter(|(p, e)| p.0 >> 20 == 1 && e.state == PageState::Stable)
        .map(|(_, e)| Slip::from_code(3, e.slips[0]).expect("valid code"))
        .collect();
    assert!(!loop_slips.is_empty(), "loop pages must stabilize");
    // "Near-first" = the initial chunk stays within the two nearest
    // sublevels (the measured reuse distance straddles the 64 KB bin
    // boundary once other traffic interleaves, so {[0]} and {[0,1]}
    // are both energy-optimal placements).
    let near_first = loop_slips
        .iter()
        .filter(|s| s.chunks().first().is_some_and(|c| *c.end() <= 1))
        .count();
    assert!(
        near_first as f64 / loop_slips.len() as f64 > 0.6,
        "near-first {near_first}/{}: {loop_slips:?}",
        loop_slips.len()
    );
}

#[test]
fn bypassed_lines_are_never_resident() {
    // Force a page to the ABP at both levels, then stream through it:
    // its lines must never be resident in L2.
    let spec = single_pattern(PatternKind::Scan {
        region_kb: 2 * 1024,
    });
    let mut system = run_system(PolicyKind::SlipAbp, &spec, 400_000);
    // Find a stable all-bypass page and replay an access to it.
    let page = system
        .mmu()
        .expect("mmu")
        .page_table
        .iter()
        .find(|(_, e)| {
            e.state == PageState::Stable
                && Slip::from_code(3, e.slips[0])
                    .expect("code")
                    .is_all_bypass()
        })
        .map(|(p, _)| *p);
    let Some(page) = page else {
        panic!("no stable bypass page found");
    };
    let addr = page.byte_addr();
    system.step(Access::read(addr));
    let line = Access::read(addr).line();
    assert!(
        !system.l2().contains(line),
        "bypassed line must not be in L2"
    );
}

#[test]
fn sampling_pages_insert_with_default_slip() {
    // Immediately after first touch every page samples; the insertion
    // class histogram must start with Default entries.
    let spec = single_pattern(PatternKind::Scan { region_kb: 1024 });
    let config = SystemConfig::paper_45nm(PolicyKind::SlipAbp);
    let seed = config.seed;
    let mut system = SingleCoreSystem::new(config);
    // One sweep only: everything is in warmup.
    system.run(spec.trace(16_384, seed));
    let r = system.finish("warmup");
    let f = r.l2_stats.insertion_class_fractions();
    assert!(
        f[2] > 0.9,
        "warmup insertions must be Default-classed: {f:?}"
    );
}

#[test]
fn mcf_phase_change_is_tracked_by_resampling() {
    // mcf's reuse behavior flips mid-run; time-based sampling must
    // re-observe pages (stable -> sampling transitions happen), so at
    // least some pages change their stable SLIP over the run.
    let spec = workloads::workload("mcf").expect("mcf");
    let system = run_system(PolicyKind::SlipAbp, &spec, 1_200_000);
    let mmu = system.mmu().expect("mmu");
    // Resampling happened:
    assert!(
        mmu.stats.slip_recomputes as f64 > mmu.page_table.len() as f64 * 0.5,
        "recomputes {} vs pages {}",
        mmu.stats.slip_recomputes,
        mmu.page_table.len()
    );
}

#[test]
fn movement_queue_never_overflows_the_paper_capacity() {
    for bench in ["soplex", "mcf", "lbm"] {
        let spec = workloads::workload(bench).expect("known");
        let system = run_system(PolicyKind::SlipAbp, &spec, 300_000);
        assert_eq!(
            system.l2().movement_queue.overflows,
            0,
            "{bench}: movement cascades exceeded 16 entries"
        );
        assert!(system.l2().movement_queue.max_occupancy <= 16);
    }
}

#[test]
fn metadata_lines_live_in_a_reserved_region() {
    // The distribution-metadata lines must never alias demand lines:
    // demand pages sit far below the metadata base (2^50 lines).
    let spec = workloads::workload("xalancbmk").expect("known");
    let system = run_system(PolicyKind::SlipAbp, &spec, 200_000);
    let r = system.finish("xalancbmk");
    assert!(r.l2_stats.metadata_accesses > 0);
    // All workload pages are below the reserved region.
    for a in workloads::workload("xalancbmk")
        .expect("known")
        .trace(1000, 1)
    {
        assert!(PageId::from_byte_addr(a.addr).0 < (1 << 50));
    }
}
