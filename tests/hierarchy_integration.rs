//! Cross-crate integration tests: the full hierarchy driven end-to-end
//! under every policy, checking conservation laws and cross-policy
//! invariants that individual crates cannot see.

use sim_engine::config::{PolicyKind, SystemConfig};
use sim_engine::system::run_workload;
use sim_engine::SimResult;

const ACCESSES: u64 = 120_000;

fn run(policy: PolicyKind, bench: &str) -> SimResult {
    let spec = workloads::workload(bench).expect("known benchmark");
    run_workload(SystemConfig::paper_45nm(policy), &spec, ACCESSES)
}

#[test]
fn accounting_identities_hold_for_every_policy() {
    for policy in PolicyKind::ALL {
        let r = run(policy, "gcc");
        // Hits + misses = accesses, per level and class.
        assert_eq!(
            r.l2_stats.demand_hits + r.l2_stats.demand_misses,
            r.l2_stats.demand_accesses,
            "{policy}"
        );
        assert_eq!(
            r.l3_stats.demand_hits + r.l3_stats.demand_misses,
            r.l3_stats.demand_accesses,
            "{policy}"
        );
        assert_eq!(
            r.l2_stats.metadata_hits + r.l2_stats.metadata_misses,
            r.l2_stats.metadata_accesses,
            "{policy}"
        );
        // Sublevel hits sum to total hits (demand + metadata).
        let sub: u64 = r.l2_stats.hits_per_sublevel.iter().sum();
        assert_eq!(
            sub,
            r.l2_stats.demand_hits + r.l2_stats.metadata_hits,
            "{policy}"
        );
        // Insertions + bypasses = classified fills.
        let classified: u64 = r.l2_stats.insertion_class.iter().sum();
        assert_eq!(
            classified,
            r.l2_stats.insertions + r.l2_stats.bypasses,
            "{policy}"
        );
    }
}

#[test]
fn demand_streams_are_identical_across_policies() {
    // Every policy sees exactly the same L1 behavior and the same L2
    // demand stream (the policies only differ below).
    let base = run(PolicyKind::Baseline, "soplex");
    for policy in [
        PolicyKind::NuRapid,
        PolicyKind::LruPea,
        PolicyKind::Slip,
        PolicyKind::SlipAbp,
    ] {
        let r = run(policy, "soplex");
        assert_eq!(r.l1_stats.demand_accesses, base.l1_stats.demand_accesses);
        assert_eq!(r.l1_stats.demand_hits, base.l1_stats.demand_hits);
        assert_eq!(
            r.l2_stats.demand_accesses, base.l2_stats.demand_accesses,
            "{policy}"
        );
    }
}

#[test]
fn l3_demand_accesses_equal_l2_demand_misses() {
    for policy in PolicyKind::ALL {
        let r = run(policy, "mcf");
        assert_eq!(
            r.l3_stats.demand_accesses, r.l2_stats.demand_misses,
            "{policy}"
        );
    }
}

#[test]
fn baseline_has_no_slip_machinery() {
    let r = run(PolicyKind::Baseline, "gcc");
    assert!(r.mmu_stats.is_none());
    assert!(r.eou_energy.is_zero());
    assert_eq!(r.l2_stats.metadata_accesses, 0);
    assert_eq!(r.l2_stats.movements, 0);
    assert_eq!(r.l2_stats.bypasses, 0);
    assert!(r.l2_energy.overhead_energy().is_zero());
}

#[test]
fn slip_abp_saves_l2_energy_on_stream_heavy_workloads() {
    // Long enough for the streaming pages to stabilize into the ABP
    // (each page needs ~16 TLB misses).
    let spec = workloads::workload("lbm").expect("known benchmark");
    let base = run_workload(
        SystemConfig::paper_45nm(PolicyKind::Baseline),
        &spec,
        600_000,
    );
    let slip = run_workload(
        SystemConfig::paper_45nm(PolicyKind::SlipAbp),
        &spec,
        600_000,
    );
    assert!(
        slip.l2_total_energy() < base.l2_total_energy() * 0.9,
        "SLIP+ABP {} vs baseline {}",
        slip.l2_total_energy(),
        base.l2_total_energy()
    );
    assert!(slip.l2_stats.bypasses > 0);
}

#[test]
fn nuca_policies_cost_energy_on_movement_heavy_workloads() {
    let base = run(PolicyKind::Baseline, "soplex");
    for policy in [PolicyKind::NuRapid, PolicyKind::LruPea] {
        let r = run(policy, "soplex");
        assert!(
            r.l2_energy.total() > base.l2_energy.total(),
            "{policy} should cost more energy than baseline"
        );
        assert!(r.l2_stats.movements > 0, "{policy} must move lines");
    }
}

#[test]
fn nuca_promotion_serves_reused_lines_nearer() {
    // On a hit-rich workload, promotion concentrates reused lines in
    // the nearest sublevel (the NUCA latency story, paper Figure 15).
    let spec = workloads::workload("sphinx3").expect("known benchmark");
    let base = run_workload(
        SystemConfig::paper_45nm(PolicyKind::Baseline),
        &spec,
        400_000,
    );
    let nurapid = run_workload(
        SystemConfig::paper_45nm(PolicyKind::NuRapid),
        &spec,
        400_000,
    );
    let near = nurapid.l2_stats.sublevel_hit_fractions()[0];
    let base_near = base.l2_stats.sublevel_hit_fractions()[0];
    assert!(
        near > base_near,
        "NuRAPID near fraction {near} vs baseline {base_near}"
    );
}

#[test]
fn full_system_energy_is_dominated_by_dram_for_memory_bound_runs() {
    let r = run(PolicyKind::Baseline, "lbm");
    let dram = r.dram_energy.total();
    assert!(
        dram / r.full_system_energy() > 0.5,
        "DRAM fraction {:.2}",
        dram / r.full_system_energy()
    );
}

#[test]
fn energy_totals_equal_category_sums() {
    let r = run(PolicyKind::SlipAbp, "soplex");
    for account in [&r.l2_energy, &r.l3_energy, &r.dram_energy] {
        let by_parts: energy_model::Energy = account.iter().map(|(_, e)| e).sum();
        assert!((by_parts - account.total()).as_pj().abs() < 1e-6);
    }
}

#[test]
fn deterministic_across_runs() {
    let a = run(PolicyKind::SlipAbp, "xalancbmk");
    let b = run(PolicyKind::SlipAbp, "xalancbmk");
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.l2_stats, b.l2_stats);
    assert_eq!(a.dram_reads, b.dram_reads);
    assert_eq!(a.l2_energy, b.l2_energy);
}
