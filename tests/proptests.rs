//! Randomized property tests over the core data structures and
//! invariants, spanning crates.
//!
//! Each property draws its cases from a seeded [`SplitMix64`] stream,
//! so every run explores the same (large) sample deterministically —
//! no external property-testing framework, no shrink files.

use cache_sim::rng::SplitMix64;
use cache_sim::{
    AccessClass, AccessKind, BaselinePolicy, CacheGeometry, CacheLevel, FillRequest, LineAddr, Lru,
    WayMask,
};
use energy_model::Energy;
use slip_core::{
    bin_for_distance, slip_energy, slip_energy_direct, LevelModelParams, RdDistribution, Slip,
};

const CASES: u64 = 256;

fn l2_params() -> LevelModelParams {
    LevelModelParams {
        sublevel_energy: vec![
            Energy::from_pj(21.0),
            Energy::from_pj(33.0),
            Energy::from_pj(50.0),
        ],
        sublevel_lines: vec![1024, 1024, 2048],
        next_level_energy: Energy::from_pj(136.0),
    }
}

/// Every SLIP code round-trips through decode/encode for every
/// sublevel count.
#[test]
fn slip_code_round_trips() {
    for sublevels in 1usize..=8 {
        for code in 0..(1u16 << sublevels) {
            let code = code as u8;
            let slip = Slip::from_code(sublevels, code).expect("in range");
            assert_eq!(slip.code(), code);
            // Chunks partition the used prefix.
            let mut next = 0;
            for c in slip.chunks() {
                assert_eq!(*c.start(), next);
                next = *c.end() + 1;
            }
            assert_eq!(next, slip.used_sublevels());
        }
    }
}

/// The coefficient-based model always agrees with direct Eq. 1-4
/// evaluation, for arbitrary probability vectors.
#[test]
fn coefficients_match_direct() {
    let params = l2_params();
    let mut rng = SplitMix64::new(0xC0EF);
    for _ in 0..CASES {
        let raw: Vec<u64> = (0..4).map(|_| rng.next_below(1000)).collect();
        let total: u64 = raw.iter().sum();
        if total == 0 {
            continue;
        }
        let probs: Vec<f64> = raw.iter().map(|&c| c as f64 / total as f64).collect();
        let code = rng.next_below(8) as u8;
        let slip = Slip::from_code(3, code).expect("valid");
        let a = slip_energy(&params, slip, &probs).as_pj();
        let b = slip_energy_direct(&params, slip, &probs).as_pj();
        assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
    }
}

/// The model is monotone in miss probability for any caching SLIP:
/// shifting mass from the nearest bin to the miss bin never reduces
/// energy.
#[test]
fn miss_mass_never_cheaper() {
    let params = l2_params();
    let mut rng = SplitMix64::new(0x715F);
    for _ in 0..CASES {
        let code = 1 + rng.next_below(7) as u8;
        let shift = rng.next_f64();
        let slip = Slip::from_code(3, code).expect("valid");
        let near = [1.0, 0.0, 0.0, 0.0];
        let shifted = [1.0 - shift, 0.0, 0.0, shift];
        let e_near = slip_energy(&params, slip, &near);
        let e_shift = slip_energy(&params, slip, &shifted);
        assert!(
            e_shift >= e_near - Energy::from_pj(1e-9),
            "slip {slip} shift {shift}"
        );
    }
}

/// Distribution counters never exceed their maximum and probabilities
/// stay normalized, under arbitrary observation streams; packing
/// round-trips.
#[test]
fn rd_distribution_invariants() {
    let mut rng = SplitMix64::new(0xD157);
    for _ in 0..64 {
        let mut d = RdDistribution::paper_default();
        let n = rng.next_below(2000);
        for _ in 0..n {
            d.observe(rng.next_below(4) as usize);
        }
        for &c in d.counts() {
            assert!(c <= d.max_count());
        }
        let p = d.probabilities();
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Packing round-trips.
        let packed = d.to_bits();
        assert_eq!(RdDistribution::from_bits(4, 4, packed), d);
    }
}

/// `bin_for_distance` is monotone in the distance.
#[test]
fn bin_for_distance_monotone() {
    let cc = [1024usize, 2048, 4096];
    let mut rng = SplitMix64::new(0xB14);
    for _ in 0..CASES {
        let a = rng.next_below(10_000);
        let b = rng.next_below(10_000);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(bin_for_distance(lo, &cc) <= bin_for_distance(hi, &cc));
    }
}

/// WayMask set algebra behaves like sets.
#[test]
fn waymask_set_algebra() {
    let mut rng = SplitMix64::new(0x3E7);
    for _ in 0..CASES {
        let a = rng.next_below(65536) as u32;
        let b = rng.next_below(65536) as u32;
        let x = WayMask::from_bits(a);
        let y = WayMask::from_bits(b);
        assert_eq!(x.union(y).count(), (a | b).count_ones() as usize);
        assert_eq!(x.intersect(y).count(), (a & b).count_ones() as usize);
        assert_eq!(x.difference(y).count(), (a & !b).count_ones() as usize);
        for w in x.iter() {
            assert!(x.contains(w));
        }
    }
}

/// A cache never holds more valid lines than its capacity, never holds
/// duplicates, and hits+misses always equals accesses — under
/// arbitrary access streams.
#[test]
fn cache_capacity_and_uniqueness() {
    let mut rng = SplitMix64::new(0xCACE);
    for _ in 0..32 {
        let geom = CacheGeometry::from_sublevels(
            8,
            &[(2, Energy::from_pj(10.0), 2), (2, Energy::from_pj(30.0), 4)],
        );
        let capacity = geom.total_lines();
        let mut cache = CacheLevel::new("prop", geom);
        let mut policy = BaselinePolicy::new();
        let mut repl = Lru::new();
        let n = 1 + rng.next_below(599);
        for i in 0..n {
            let line = LineAddr(rng.next_below(512));
            let res = cache.access(
                line,
                AccessKind::Read,
                AccessClass::Demand,
                i * 100,
                &mut policy,
                &mut repl,
            );
            if !res.is_hit() {
                cache.fill(FillRequest::new(line), i * 100, &mut policy, &mut repl);
            }
            // The just-filled/hit line is resident.
            assert!(cache.contains(line));
        }
        assert!(cache.resident_lines() <= capacity);
        assert_eq!(
            cache.stats.demand_hits + cache.stats.demand_misses,
            cache.stats.demand_accesses
        );
        // Insertions == misses (we filled on every miss; no bypass).
        assert_eq!(cache.stats.insertions, cache.stats.demand_misses);
    }
}

/// Workload traces are exactly reproducible and have the requested
/// length, for every benchmark and any seed.
#[test]
fn traces_are_deterministic() {
    let mut rng = SplitMix64::new(0x7ACE);
    for idx in 0..workloads::BENCHMARK_NAMES.len() {
        let seed = rng.next_below(1000);
        let name = workloads::BENCHMARK_NAMES[idx];
        let spec = workloads::workload(name).expect("known");
        let a: Vec<_> = spec.trace(500, seed).collect();
        let b: Vec<_> = spec.trace(500, seed).collect();
        assert_eq!(a.len(), 500);
        assert_eq!(a, b);
    }
}

/// The EOU's argmin really is the minimum over all candidates, for
/// arbitrary distributions (exhaustive check per case).
#[test]
fn eou_is_argmin() {
    let params = l2_params();
    let mut eou = slip_core::EnergyOptimizerUnit::new(&params);
    let mut rng = SplitMix64::new(0xE0);
    for _ in 0..16 {
        let mut d = RdDistribution::paper_default();
        for bin in 0..4 {
            let c = rng.next_below(15);
            for _ in 0..c {
                d.observe(bin);
            }
        }
        let decision = eou.optimize(&d);
        let probs = d.probabilities();
        for slip in Slip::enumerate(3) {
            let e = slip_energy(&params, slip, &probs);
            assert!(
                decision.estimated_energy <= e + Energy::from_pj(1e-9),
                "{} beats {}",
                slip,
                decision.slip
            );
        }
    }
}
