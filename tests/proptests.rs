//! Property-based tests over the core data structures and invariants,
//! spanning crates.

use cache_sim::{
    AccessClass, AccessKind, BaselinePolicy, CacheGeometry, CacheLevel, FillRequest, LineAddr,
    Lru, WayMask,
};
use energy_model::Energy;
use proptest::prelude::*;
use slip_core::{bin_for_distance, slip_energy, slip_energy_direct, LevelModelParams,
                RdDistribution, Slip};

fn l2_params() -> LevelModelParams {
    LevelModelParams {
        sublevel_energy: vec![
            Energy::from_pj(21.0),
            Energy::from_pj(33.0),
            Energy::from_pj(50.0),
        ],
        sublevel_lines: vec![1024, 1024, 2048],
        next_level_energy: Energy::from_pj(136.0),
    }
}

proptest! {
    /// Every SLIP code round-trips through decode/encode for every
    /// sublevel count.
    #[test]
    fn slip_code_round_trips(sublevels in 1usize..=8, code in 0u16..256) {
        let code = (code as usize % (1 << sublevels)) as u8;
        let slip = Slip::from_code(sublevels, code).expect("in range");
        prop_assert_eq!(slip.code(), code);
        // Chunks partition the used prefix.
        let mut next = 0;
        for c in slip.chunks() {
            prop_assert_eq!(*c.start(), next);
            next = *c.end() + 1;
        }
        prop_assert_eq!(next, slip.used_sublevels());
    }

    /// The coefficient-based model always agrees with direct
    /// Eq. 1-4 evaluation, for arbitrary probability vectors.
    #[test]
    fn coefficients_match_direct(
        raw in prop::array::uniform4(0u32..1000),
        code in 0u8..8,
    ) {
        let total: u32 = raw.iter().sum();
        prop_assume!(total > 0);
        let probs: Vec<f64> = raw.iter().map(|&c| f64::from(c) / f64::from(total)).collect();
        let params = l2_params();
        let slip = Slip::from_code(3, code).expect("valid");
        let a = slip_energy(&params, slip, &probs).as_pj();
        let b = slip_energy_direct(&params, slip, &probs).as_pj();
        prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
    }

    /// The model is monotone in miss probability for any caching SLIP:
    /// shifting mass from the nearest bin to the miss bin never
    /// reduces energy.
    #[test]
    fn miss_mass_never_cheaper(code in 1u8..8, shift in 0.0f64..1.0) {
        let params = l2_params();
        let slip = Slip::from_code(3, code).expect("valid");
        let near = [1.0, 0.0, 0.0, 0.0];
        let shifted = [1.0 - shift, 0.0, 0.0, shift];
        let e_near = slip_energy(&params, slip, &near);
        let e_shift = slip_energy(&params, slip, &shifted);
        prop_assert!(e_shift >= e_near - Energy::from_pj(1e-9));
    }

    /// Distribution counters never exceed their maximum and halving
    /// preserves relative order.
    #[test]
    fn rd_distribution_invariants(obs in prop::collection::vec(0usize..4, 0..2000)) {
        let mut d = RdDistribution::paper_default();
        for bin in obs {
            d.observe(bin);
        }
        for &c in d.counts() {
            prop_assert!(c <= d.max_count());
        }
        let p = d.probabilities();
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        // Packing round-trips.
        let packed = d.to_bits();
        prop_assert_eq!(RdDistribution::from_bits(4, 4, packed), d);
    }

    /// `bin_for_distance` is monotone in the distance.
    #[test]
    fn bin_for_distance_monotone(a in 0u64..10_000, b in 0u64..10_000) {
        let cc = [1024usize, 2048, 4096];
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bin_for_distance(lo, &cc) <= bin_for_distance(hi, &cc));
    }

    /// WayMask set algebra behaves like sets.
    #[test]
    fn waymask_set_algebra(a in 0u32..65536, b in 0u32..65536) {
        let x = WayMask::from_bits(a);
        let y = WayMask::from_bits(b);
        prop_assert_eq!(x.union(y).count(), (a | b).count_ones() as usize);
        prop_assert_eq!(x.intersect(y).count(), (a & b).count_ones() as usize);
        prop_assert_eq!(x.difference(y).count(), (a & !b).count_ones() as usize);
        for w in x.iter() {
            prop_assert!(x.contains(w));
        }
    }

    /// A cache never holds more valid lines than its capacity, never
    /// holds duplicates, and hits+misses always equals accesses —
    /// under arbitrary access streams.
    #[test]
    fn cache_capacity_and_uniqueness(addrs in prop::collection::vec(0u64..512, 1..600)) {
        let geom = CacheGeometry::from_sublevels(
            8,
            &[(2, Energy::from_pj(10.0), 2), (2, Energy::from_pj(30.0), 4)],
        );
        let capacity = geom.total_lines();
        let mut cache = CacheLevel::new("prop", geom);
        let mut policy = BaselinePolicy::new();
        let mut repl = Lru::new();
        for (i, &a) in addrs.iter().enumerate() {
            let line = LineAddr(a);
            let res = cache.access(
                line,
                AccessKind::Read,
                AccessClass::Demand,
                i as u64 * 100,
                &mut policy,
                &mut repl,
            );
            if !res.is_hit() {
                cache.fill(FillRequest::new(line), i as u64 * 100, &mut policy, &mut repl);
            }
            // The just-filled/hit line is resident.
            prop_assert!(cache.contains(line));
        }
        prop_assert!(cache.resident_lines() <= capacity);
        prop_assert_eq!(
            cache.stats.demand_hits + cache.stats.demand_misses,
            cache.stats.demand_accesses
        );
        // Insertions == misses (we filled on every miss; no bypass).
        prop_assert_eq!(cache.stats.insertions, cache.stats.demand_misses);
    }

    /// Workload traces are exactly reproducible and have the requested
    /// length, for every benchmark and any seed.
    #[test]
    fn traces_are_deterministic(seed in 0u64..1000, idx in 0usize..14) {
        let name = workloads::BENCHMARK_NAMES[idx];
        let spec = workloads::workload(name).expect("known");
        let a: Vec<_> = spec.trace(500, seed).collect();
        let b: Vec<_> = spec.trace(500, seed).collect();
        prop_assert_eq!(a.len(), 500);
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The EOU's argmin really is the minimum over all candidates, for
    /// arbitrary distributions (exhaustive check per case).
    #[test]
    fn eou_is_argmin(raw in prop::array::uniform4(0u16..15)) {
        let params = l2_params();
        let mut eou = slip_core::EnergyOptimizerUnit::new(&params);
        let mut d = RdDistribution::paper_default();
        for (bin, &c) in raw.iter().enumerate() {
            for _ in 0..c {
                d.observe(bin);
            }
        }
        let decision = eou.optimize(&d);
        let probs = d.probabilities();
        for slip in Slip::enumerate(3) {
            let e = slip_energy(&params, slip, &probs);
            prop_assert!(
                decision.estimated_energy <= e + Energy::from_pj(1e-9),
                "{} beats {}", slip, decision.slip
            );
        }
    }
}
