#!/usr/bin/env sh
# Tier-1 gate: everything here must pass before merging.
#
# Operates on the workspace default-members (crates/bench is excluded
# there to keep this loop fast and registry-free; build it explicitly
# with `cargo build -p slip-bench` when touching bench targets).
set -eu

cd "$(dirname "$0")/.."

if command -v cargo-fmt >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --check
else
    echo "==> rustfmt not installed; skipping format step"
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# Conformance gate: bounded differential fuzz + invariant sweep at a
# fixed seed, so every run covers the identical scenario set. Override
# the iteration budget with SLIP_FUZZ_ITERS if the default is too slow
# on a given machine. The nightly-equivalent full budget is:
#   ./target/release/slip check --full --oracle
echo "==> slip check --quick --seed 0x511b"
SLIP_FUZZ_ITERS="${SLIP_FUZZ_ITERS:-48}" ./target/release/slip check --quick --seed 0x511b

if command -v cargo-clippy >/dev/null 2>&1; then
    echo "==> cargo clippy -q --all-targets -- -D warnings"
    cargo clippy -q --all-targets -- -D warnings
else
    echo "==> clippy not installed; skipping lint step"
fi

# Perf-regression smoke: the quick microbench suite must stay within
# 20% of the committed baseline (BENCH_4.json). Wall-clock sensitive,
# so allow opting out on loaded/shared machines.
if [ "${SLIP_SKIP_BENCH:-0}" = "1" ]; then
    echo "==> SLIP_SKIP_BENCH=1; skipping bench smoke"
else
    echo "==> slip bench --quick --check BENCH_4.json"
    ./target/release/slip bench --quick --check BENCH_4.json
fi

echo "==> ci OK"
