#!/usr/bin/env sh
# Tier-1 gate: everything here must pass before merging.
#
# Operates on the workspace default-members (crates/bench is excluded
# there to keep this loop fast and registry-free; build it explicitly
# with `cargo build -p slip-bench` when touching bench targets).
set -eu

cd "$(dirname "$0")/.."

if command -v cargo-fmt >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --check
else
    echo "==> rustfmt not installed; skipping format step"
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# Conformance gate: bounded differential fuzz + invariant sweep
# (including the shard-, fused-, fastpath-, and topology-determinism
# checks: the sharded/fused executions, the batched L1 fast path — the
# default hot path since PR 9 — and every built-in hierarchy spec must
# be bit-identical to the verbatim reference over the adversarial
# trace families) at a fixed seed, so every run covers the identical
# scenario set. --topology stt-llc additionally drives the asymmetric
# STT-RAM node through the CLI spec-loading path and holds it to the
# same run-mode determinism bar. Override the iteration budget with
# SLIP_FUZZ_ITERS if the default is too slow on a given machine. The
# nightly-equivalent full budget is:
#   ./target/release/slip check --full --oracle
echo "==> slip check --quick --seed 0x511b --topology stt-llc"
SLIP_FUZZ_ITERS="${SLIP_FUZZ_ITERS:-48}" ./target/release/slip check --quick --seed 0x511b \
    --topology stt-llc

# Malformed-spec rejection smoke: a broken topology file must fail
# fast with a positioned diagnostic, never reach simulation.
echo "==> malformed topology rejection smoke"
TOPO_BAD="target/ci-bad.topo"
printf 'node broken\nwire 0.16\n' > "$TOPO_BAD"
if ./target/release/slip run gcc --topology "$TOPO_BAD" --accesses 100 \
    >/dev/null 2>"$TOPO_BAD.err"; then
    echo "malformed topology was accepted" >&2
    exit 1
fi
grep -q 'line 2' "$TOPO_BAD.err" || {
    echo "malformed topology error lacks a position:" >&2
    cat "$TOPO_BAD.err" >&2
    exit 1
}
rm -f "$TOPO_BAD" "$TOPO_BAD.err"

if command -v cargo-clippy >/dev/null 2>&1; then
    echo "==> cargo clippy -q --all-targets -- -D warnings"
    cargo clippy -q --all-targets -- -D warnings
else
    echo "==> clippy not installed; skipping lint step"
fi

# Serve smoke: boot the daemon on an ephemeral loopback port — sharded
# (--shards 2), so every server-executed cell runs set-sharded — and
# push a 2x2 sweep through a real client with offline verification.
# The offline reference sweep is serial, so --verify-offline doubles as
# an end-to-end sharded-vs-serial bit-exactness gate (the submit exits
# non-zero on any byte difference). Then shut down gracefully.
# Everything is timeout-bounded so a wedged server fails the gate
# instead of hanging it.
echo "==> slip serve loopback smoke (--shards 2)"
SERVE_DIR="target/ci-serve"
rm -rf "$SERVE_DIR"
mkdir -p "$SERVE_DIR"
./target/release/slip serve --addr 127.0.0.1:0 --jobs 2 --shards 2 \
    --journal-dir "$SERVE_DIR/journals" --port-file "$SERVE_DIR/port" \
    --quiet &
SERVE_PID=$!
tries=0
while [ ! -s "$SERVE_DIR/port" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "serve smoke: server never wrote its port file" >&2
        kill -9 "$SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
SERVE_ADDR="$(cat "$SERVE_DIR/port")"
timeout 120 ./target/release/slip submit gcc soplex \
    --policy baseline --policy slip --accesses 20000 \
    --connect "$SERVE_ADDR" --verify-offline --quiet \
    > "$SERVE_DIR/stream.jsonl"
[ "$(wc -l < "$SERVE_DIR/stream.jsonl")" = "4" ] || {
    echo "serve smoke: expected 4 streamed cells" >&2
    kill -9 "$SERVE_PID" 2>/dev/null || true
    exit 1
}
kill -INT "$SERVE_PID"
tries=0
while kill -0 "$SERVE_PID" 2>/dev/null; do
    tries=$((tries + 1))
    if [ "$tries" -gt 200 ]; then
        echo "serve smoke: server did not drain within 20s of SIGINT" >&2
        kill -9 "$SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
wait "$SERVE_PID" 2>/dev/null || true
rm -rf "$SERVE_DIR"

# Sharded sweep smoke: the CLI --shards plumbing end to end (the
# bit-exactness itself is held by `slip check --quick` above).
echo "==> slip sweep --shards 2 smoke"
./target/release/slip sweep gcc soplex --accesses 20000 --jobs 2 --shards 2 \
    >/dev/null

# Fused sweep smoke: the CLI --trace-mode fused plumbing end to end
# (fused-vs-per-cell bit-exactness is held by the fused-determinism
# check inside `slip check --quick` above).
echo "==> slip sweep --trace-mode fused smoke"
./target/release/slip sweep gcc soplex --accesses 20000 --jobs 2 \
    --trace-mode fused >/dev/null

# Perf-regression smoke: the quick microbench suite must stay within
# the tolerance (default 20%, override with --tolerance/SLIP_BENCH_TOL)
# of the committed baseline (BENCH_9.json). Wall-clock sensitive, so
# allow opting out on loaded/shared machines.
if [ "${SLIP_SKIP_BENCH:-0}" = "1" ]; then
    echo "==> SLIP_SKIP_BENCH=1; skipping bench smoke"
else
    echo "==> slip bench --quick --check BENCH_9.json"
    ./target/release/slip bench --quick --check BENCH_9.json
fi

echo "==> ci OK"
