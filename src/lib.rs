//! Facade crate for the SLIP reproduction workspace.
//!
//! Reproduction of *SLIP: Reducing Wire Energy in the Memory Hierarchy*
//! (Das, Aamodt, Dally; ISCA 2015). Depend on this crate to get the
//! whole stack, or on the member crates individually:
//!
//! * [`slip_core`] — the paper's contribution: SLIP policies,
//!   reuse-distance distributions, the analytical energy model, the
//!   Energy Optimizer Unit, time-based sampling, way partitioning.
//! * [`cache_sim`] — the trace-driven, sublevel-aware cache substrate.
//! * [`energy_model`] — Table 2 parameters, Figure 4 topologies, energy
//!   accounting.
//! * [`mem_substrate`] — TLB, page table (PTE-resident SLIPs), DRAM,
//!   and the Figure 7 MMU.
//! * [`nuca_baselines`] — NuRAPID and LRU-PEA comparison policies.
//! * [`workloads`] — synthetic SPEC-CPU2006-like trace generators and
//!   the `SLIPTRC1` trace-file format.
//! * [`sim_engine`] — single/dual-core drivers and one experiment
//!   runner per paper figure.
//! * [`slip_conformance`] — differential fuzzer, executable invariants,
//!   and the figure-oracle regression gate behind `slip check`.
//! * [`slip_serve`] — the `slip serve` daemon: a multi-tenant sweep
//!   service with shared execution, a server-wide trace cache, and
//!   journal-backed resumable result streams.
//!
//! # Example
//!
//! ```no_run
//! use slip::sim_engine::config::{PolicyKind, SystemConfig};
//! use slip::sim_engine::system::run_workload;
//!
//! let spec = slip::workloads::workload("soplex").unwrap();
//! let base = run_workload(SystemConfig::paper_45nm(PolicyKind::Baseline), &spec, 1_000_000);
//! let abp = run_workload(SystemConfig::paper_45nm(PolicyKind::SlipAbp), &spec, 1_000_000);
//! println!(
//!     "L2 energy saving: {:.1}%",
//!     (1.0 - abp.l2_total_energy() / base.l2_total_energy()) * 100.0
//! );
//! ```

pub use cache_sim;
pub use energy_model;
pub use mem_substrate;
pub use nuca_baselines;
pub use sim_engine;
pub use slip_conformance;
pub use slip_core;
pub use slip_serve;
pub use sweep_runner;
pub use workloads;
